//! Closed-loop failure lifecycle engine: detect → localize → mitigate →
//! resume (paper §3, §5; Figure 7 fault classes, Figure 10 goodput).
//!
//! [`run_training`] drives a training job iteration by iteration on the
//! flow-level network simulator, with faults injected mid-run from a
//! [`FaultScript`]. Detection is *online* — the monitor's
//! [`OnlineDetector`] sees only per-iteration observables (duration, flow
//! aborts) — and localization is *observational*: the engine walks INT
//! probes hop by hop to find the dead link, exactly as the analyzer's
//! drill-down would, never peeking at the injected ground truth.
//!
//! Mitigation follows the paper's playbook per fault class:
//!
//! * **transient NIC/link faults** — ECMP source-port reassignment steers
//!   the victim QPs off the flaky path (the §2.1 managed-ECMP controller
//!   knob), and the iteration is retried under exponential backoff with a
//!   bounded retry budget;
//! * **optical faults on dual-ToR hosts** — traffic fails over to the
//!   surviving ToR port at degraded bandwidth (property P3), unless the
//!   surviving fraction is below the policy's floor, in which case the
//!   host is drained and replaced;
//! * **hard host faults** — the host is cordoned, a spare takes its
//!   place, and the job restarts from the last checkpoint.
//!
//! The engine accounts goodput the way Figure 10 does: wall-clock is
//! partitioned into useful training, work lost to rollback, checkpoint
//! overhead, and downtime (detection, backoff, restart), yielding an
//! effective-training-time ratio plus MTTR/MTTLF per incident.

use crate::cascade::SubstrateState;
use astral_collectives::{CollectiveRunner, RunnerConfig};
use astral_monitor::{
    Analyzer, CauseClass, CorrelationPrior, GrayDetector, GrayDetectorConfig, GrayEdge, GrayEvent,
    GrayPattern, GraySample, GrayVerdict, HostHealth, JobDesc, OnlineAlarm, OnlineDetector,
    OnlineDetectorConfig, RankProgress, RootCause, Snapshot,
};
use astral_net::{FlowEvent, QpId, QpRecord, SolverCounters, EPHEMERAL_BASE};
use astral_sim::{SimDuration, SimRng};
use astral_topo::{GpuId, HostId, LinkId, NodeId, NodeKind, Router, Topology};
use astral_trace::{TraceKind, TraceRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Tunable recovery behaviour — the policy axis the Figure-10 goodput
/// sweep explores.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Master switch: disabled means the first alarm aborts the job.
    pub enabled: bool,
    /// Iterations between checkpoints.
    pub checkpoint_interval: u32,
    /// Wall-clock cost of writing one checkpoint.
    pub checkpoint_cost_s: f64,
    /// Mitigate-and-retry attempts per iteration before escalating to a
    /// checkpoint restart.
    pub retry_budget: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Time the monitor needs to raise and localize an alarm.
    pub detection_overhead_s: f64,
    /// Re-placement + checkpoint-restore cost for a restart.
    pub restart_overhead_s: f64,
    /// Minimum surviving-uplink fraction for a dual-ToR failover; hosts
    /// degraded below this are drained and replaced instead.
    pub degraded_bw_floor: f64,
    /// Checkpoint restarts allowed before the job is declared lost.
    pub max_restarts: u32,
    /// Graceful degradation: on a diagnosed substrate cascade, engage
    /// flow reroute + thermal power caps (cooling), power-cap
    /// ride-through (power), and straggler-aware micro-batch rebalancing
    /// instead of letting the cascade escalate to a cordon.
    pub graceful_degradation: bool,
    /// Take a checkpoint when the Seer hazard forecast predicts a forced
    /// cordon (or battery exhaustion) within [`Self::seer_lead_iters`].
    pub proactive_checkpoint: bool,
    /// Forecast lead window, iterations, for the proactive checkpoint.
    pub seer_lead_iters: u32,
    /// Run the [`GrayDetector`] alongside the fail-stop ladder: flapping
    /// links enter steer-around probation with probe-before-readmit,
    /// degrading optics fail over proactively, and gray stragglers are
    /// soft-quarantined (spare swap at the iteration boundary, no
    /// rollback).
    pub gray_detection: bool,
    /// Initial probation window, iterations, for a suspect flapping link;
    /// doubles each time the probe finds fresh flap edges.
    pub gray_probation_iters: u32,
    /// Suspicion score at which the gray detector raises a verdict
    /// (the [`GrayDetectorConfig::suspect_on`] threshold).
    pub gray_suspicion_threshold: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            checkpoint_interval: 5,
            checkpoint_cost_s: 0.05,
            retry_budget: 3,
            backoff_base: SimDuration::from_millis(50),
            detection_overhead_s: 0.2,
            restart_overhead_s: 0.5,
            degraded_bw_floor: 0.4,
            max_restarts: 3,
            graceful_degradation: true,
            proactive_checkpoint: true,
            seer_lead_iters: 3,
            gray_detection: false,
            gray_probation_iters: 4,
            gray_suspicion_threshold: 0.5,
        }
    }
}

/// A nonsensical [`RecoveryPolicy`] knob combination, rejected before a
/// run starts (a zero checkpoint interval would otherwise panic deep in
/// the rollback arithmetic; a zero retry budget with mitigation enabled
/// silently degrades every reroute into a restart).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyError {
    /// `checkpoint_interval` must be ≥ 1 (rollback divides by it).
    ZeroCheckpointInterval,
    /// Mitigation is enabled but `retry_budget` is 0: every transient
    /// fault would escalate straight to a checkpoint restart.
    ZeroRetryBudget,
    /// Mitigation is enabled but `max_restarts` is 0: the first
    /// escalation aborts the job.
    ZeroMaxRestarts,
    /// Mitigation is enabled with retries but no backoff: the retry loop
    /// would hammer a faulted fabric with zero spacing.
    ZeroBackoff,
    /// A wall-clock cost knob is negative or non-finite.
    BadCost {
        /// Which knob.
        field: &'static str,
        /// The offending value, seconds.
        value: f64,
    },
    /// `degraded_bw_floor` must lie in [0, 1].
    BwFloorOutOfRange {
        /// The offending fraction.
        value: f64,
    },
    /// Proactive checkpoints are enabled but the Seer lead window is 0
    /// iterations: the forecast could never fire before the cordon.
    ZeroSeerLead,
    /// Gray detection is enabled but the probation window is 0 iterations:
    /// a probed link would be readmitted the moment it was cordoned.
    ZeroGrayProbation,
    /// `gray_suspicion_threshold` must lie in (0, 1]: at 0 every link is
    /// suspect from the first sample, above 1 no link can ever be.
    GrayThresholdOutOfRange {
        /// The offending threshold.
        value: f64,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::ZeroCheckpointInterval => {
                write!(f, "checkpoint_interval must be at least 1")
            }
            PolicyError::ZeroRetryBudget => {
                write!(
                    f,
                    "retry_budget must be at least 1 when recovery is enabled"
                )
            }
            PolicyError::ZeroMaxRestarts => {
                write!(
                    f,
                    "max_restarts must be at least 1 when recovery is enabled"
                )
            }
            PolicyError::ZeroBackoff => {
                write!(f, "backoff_base must be positive when retries are enabled")
            }
            PolicyError::BadCost { field, value } => {
                write!(f, "{field} must be finite and non-negative, got {value}")
            }
            PolicyError::BwFloorOutOfRange { value } => {
                write!(f, "degraded_bw_floor must lie in [0, 1], got {value}")
            }
            PolicyError::ZeroSeerLead => {
                write!(
                    f,
                    "seer_lead_iters must be at least 1 when proactive_checkpoint is on"
                )
            }
            PolicyError::ZeroGrayProbation => {
                write!(
                    f,
                    "gray_probation_iters must be at least 1 when gray_detection is on"
                )
            }
            PolicyError::GrayThresholdOutOfRange { value } => {
                write!(
                    f,
                    "gray_suspicion_threshold must lie in (0, 1], got {value}"
                )
            }
        }
    }
}

impl std::error::Error for PolicyError {}

impl RecoveryPolicy {
    /// The ablation baseline: no recovery, first fault kills the job.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::default()
        }
    }

    /// The PR-1 reactive ladder only: reroute/failover/restart, no
    /// graceful degradation and no Seer-gated proactive checkpoints.
    pub fn reactive_only() -> Self {
        RecoveryPolicy {
            graceful_degradation: false,
            proactive_checkpoint: false,
            ..RecoveryPolicy::default()
        }
    }

    /// The reactive ladder plus gray-failure handling: suspicion-scored
    /// probation for flappers, proactive failover for degrading optics,
    /// and soft quarantine for gray stragglers.
    pub fn gray_aware() -> Self {
        RecoveryPolicy {
            gray_detection: true,
            ..RecoveryPolicy::reactive_only()
        }
    }

    /// Reject nonsensical knob combinations at construction time instead
    /// of letting them panic (or silently misbehave) mid-run.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.checkpoint_interval == 0 {
            return Err(PolicyError::ZeroCheckpointInterval);
        }
        for (field, value) in [
            ("checkpoint_cost_s", self.checkpoint_cost_s),
            ("detection_overhead_s", self.detection_overhead_s),
            ("restart_overhead_s", self.restart_overhead_s),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(PolicyError::BadCost { field, value });
            }
        }
        if !(0.0..=1.0).contains(&self.degraded_bw_floor) {
            return Err(PolicyError::BwFloorOutOfRange {
                value: self.degraded_bw_floor,
            });
        }
        if self.enabled {
            if self.retry_budget == 0 {
                return Err(PolicyError::ZeroRetryBudget);
            }
            if self.max_restarts == 0 {
                return Err(PolicyError::ZeroMaxRestarts);
            }
            if self.backoff_base.as_secs_f64() <= 0.0 {
                return Err(PolicyError::ZeroBackoff);
            }
        }
        if self.proactive_checkpoint && self.seer_lead_iters == 0 {
            return Err(PolicyError::ZeroSeerLead);
        }
        if self.gray_detection {
            if self.gray_probation_iters == 0 {
                return Err(PolicyError::ZeroGrayProbation);
            }
            let th = self.gray_suspicion_threshold;
            if !th.is_finite() || th <= 0.0 || th > 1.0 {
                return Err(PolicyError::GrayThresholdOutOfRange { value: th });
            }
        }
        Ok(())
    }
}

/// Why a run ended without completing — the per-job abort taxonomy a
/// fleet controller arbitrates on (requeue vs fail vs escalate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Recovery was disabled: the first alarm killed the job (the
    /// ablation baseline).
    RecoveryDisabled,
    /// A cordon needed a spare but the job's spare allocation was empty —
    /// the fleet-level spare pool (or the job's grant from it) ran dry.
    SparesExhausted,
    /// The restart budget (`max_restarts`) was spent.
    RestartBudgetExhausted,
    /// Victim flows could not be steered although both endpoints were
    /// alive: the fabric partitioned beyond what ECMP can route around.
    FabricPartitioned,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AbortReason::RecoveryDisabled => "recovery disabled",
            AbortReason::SparesExhausted => "spares exhausted",
            AbortReason::RestartBudgetExhausted => "restart budget exhausted",
            AbortReason::FabricPartitioned => "fabric partitioned",
        };
        write!(f, "{s}")
    }
}

/// An explicit rank → host mapping plus the spare hosts granted to the
/// job — the multi-tenant entry point. The single-job API places jobs at
/// the fleet prefix ([`JobPlacement::prefix`]); a fleet controller places
/// each tenant wherever its policy decided and grants spares from a
/// shared pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPlacement {
    /// Hosts the job runs on (one rank on rail 0 of each).
    pub hosts: Vec<HostId>,
    /// Spare hosts this job may claim on a cordon, in grant order
    /// (claims pop from the back).
    pub spares: Vec<HostId>,
}

impl JobPlacement {
    /// The legacy single-job layout: the job on hosts `0..hosts`, spares
    /// on the `spares` hosts after them.
    pub fn prefix(hosts: usize, spares: usize) -> Self {
        JobPlacement {
            hosts: (0..hosts as u32).map(HostId).collect(),
            spares: (hosts as u32..(hosts + spares) as u32)
                .map(HostId)
                .collect(),
        }
    }
}

/// Shape of the simulated training job.
#[derive(Debug, Clone, Copy)]
pub struct TrainingJobSpec {
    /// Hosts in the job (one rank on rail 0 of each).
    pub hosts: usize,
    /// Healthy spare hosts kept warm for re-placement.
    pub spares: usize,
    /// Iterations to complete.
    pub iters: u32,
    /// AllReduce payload per iteration.
    pub bytes: u64,
    /// Per-iteration computation time.
    pub comp_s: f64,
    /// RNG seed (victim-link choice, steering candidates).
    pub seed: u64,
}

impl Default for TrainingJobSpec {
    fn default() -> Self {
        TrainingJobSpec {
            hosts: 16,
            spares: 2,
            iters: 20,
            bytes: 16 << 20,
            comp_s: 0.5,
            seed: 7,
        }
    }
}

/// One fault to inject mid-run (Figure 7 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// A mid-fabric link flaps: hard-fails on an active path, healing on
    /// its own while recovery backs off.
    TransientLink {
        /// Iteration at whose start the failure lands.
        at_iter: u32,
        /// Nominal outage duration (the link is back by the time the
        /// engine's retry backoff has elapsed).
        heal_after: SimDuration,
    },
    /// An optical module on one dual-ToR uplink of a job host dies for
    /// good (fiber + both directions).
    OpticalUplink {
        /// Iteration at whose start the failure lands.
        at_iter: u32,
        /// Index into the job's host list.
        host_index: usize,
    },
    /// A job host dies outright: every NIC port goes dark.
    HostFailure {
        /// Iteration at whose start the failure lands.
        at_iter: u32,
        /// Index into the job's host list.
        host_index: usize,
    },
    /// A gray fault: one mid-fabric link flaps as a deterministic square
    /// wave — hard-fail for the down phase of each period, restore for
    /// the up phase — until `flap_count` down phases have run. Each
    /// transition lands at an iteration top, so replays are byte-exact.
    FlappingLink {
        /// Iteration of the first down edge.
        at_iter: u32,
        /// Full flap period, iterations (≥ 2: at least one up iteration
        /// per cycle, or the link is simply dead).
        period: u32,
        /// Fraction of each period spent down (clamped to keep at least
        /// one down and one up iteration per period).
        duty_cycle: f64,
        /// Down phases before the link stays up for good.
        flap_count: u32,
    },
    /// A gray fault: the optic on one host's in-use dual-ToR uplink
    /// develops BER creep — both directions lose a constant factor of
    /// capacity per iteration until they hit `floor`, without ever going
    /// down. No flow aborts; the job just gets slower.
    DegradingOptic {
        /// Iteration of the first decay step.
        at_iter: u32,
        /// Index into the job's host list.
        host_index: usize,
        /// Multiplicative capacity retention per iteration (in (0, 1)).
        decay_per_iter: f64,
        /// Surviving-capacity fraction the decay bottoms out at (> 0).
        floor: f64,
    },
    /// A gray fault: one host's ingress drains at a fraction of line rate
    /// on every rail — the NIC-level manifestation of a sick host — either
    /// persistently or toggling on/off each iteration.
    SlowHost {
        /// Iteration at whose start the slowdown lands.
        at_iter: u32,
        /// Index into the job's host list.
        host_index: usize,
        /// Surviving ingress-capacity fraction while slow (in (0, 1)).
        factor: f64,
        /// Alternate slow/healthy each iteration instead of staying slow.
        intermittent: bool,
    },
}

impl InjectedFault {
    fn at_iter(&self) -> u32 {
        match *self {
            InjectedFault::TransientLink { at_iter, .. }
            | InjectedFault::OpticalUplink { at_iter, .. }
            | InjectedFault::HostFailure { at_iter, .. }
            | InjectedFault::FlappingLink { at_iter, .. }
            | InjectedFault::DegradingOptic { at_iter, .. }
            | InjectedFault::SlowHost { at_iter, .. } => at_iter,
        }
    }
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// Faults, any order; the engine injects each at its iteration.
    pub faults: Vec<InjectedFault>,
}

/// What the engine concluded a fault was (from observables only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A link that aborted flows but healed / was steerable mid-fabric.
    TransientLink,
    /// A dead host-edge uplink with a surviving dual-ToR sibling.
    OpticalDualTor,
    /// A host no probe can reach.
    HardHost,
    /// A persistent slowdown without aborts.
    FailSlow,
    /// A link with recurrent up/down transitions — gray, not a one-off
    /// transient (the suspicion detector's flapping verdict).
    FlappingLink,
    /// An optic whose capacity decays monotonically while staying up —
    /// the BER-creep signature the proactive failover preempts.
    DegradingOptic,
    /// A host whose ingress drains persistently or intermittently slowly —
    /// the soft-quarantine target.
    GrayStraggler,
}

impl FaultClass {
    /// The Figure-7 root cause this class maps onto.
    pub fn root_cause(&self) -> RootCause {
        match self {
            FaultClass::TransientLink | FaultClass::FlappingLink => RootCause::LinkFlap,
            FaultClass::OpticalDualTor | FaultClass::DegradingOptic => RootCause::OpticalFiber,
            FaultClass::HardHost => RootCause::GpuHardware,
            FaultClass::FailSlow => RootCause::SwitchConfig,
            FaultClass::GrayStraggler => RootCause::HostEnvConfig,
        }
    }
}

/// How an incident was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Victim QPs steered to new source ports; iteration retried.
    EcmpReroute,
    /// Traffic moved to the surviving ToR port (degraded bandwidth).
    TorFailover,
    /// Host(s) cordoned / drained, spare placed, job rolled back to the
    /// last checkpoint.
    RestartFromCheckpoint,
    /// Cooling cascade: louvers/valves steered the surviving airflow
    /// toward the hot racks and a thermal power cap sized the heat to it.
    FlowReroute,
    /// Power cascade: the rack power cap was accepted and ridden through
    /// instead of draining the row.
    PowerCapRideThrough,
    /// Straggler-aware micro-batch rebalancing: work shifted off the
    /// throttled hosts so the job runs at the harmonic-mean slowdown
    /// instead of the max.
    MicroBatchRebalance,
    /// A checkpoint taken because the Seer hazard forecast predicted a
    /// forced cordon (or battery exhaustion) within the lead window.
    ProactiveCheckpoint,
    /// A flapping link was steered around and placed under probation:
    /// traffic stays off it until a quiet probe window readmits it.
    LinkProbation,
    /// A probation probe found no fresh flap edges: the link rejoined the
    /// steerable fabric.
    ProbeReadmit,
    /// A degrading optic was failed over to the sibling ToR *before* it
    /// tripped the fail-stop ladder.
    ProactiveTorFailover,
    /// A gray straggler was soft-cordoned: checkpoint at the iteration
    /// boundary, spare swapped in, no rollback.
    Quarantine,
    /// Recovery gave up (or was disabled).
    Abort,
}

/// Stable numeric codes for trace-record payloads. These are part of the
/// serialized trace format (`astral-trace` JSONL) — append new codes,
/// never renumber existing ones.
pub mod trace_codes {
    use super::{FaultClass, InjectedFault, MitigationAction};
    use astral_monitor::CauseClass;

    /// Code of a mitigation action (`LadderDecision` records, `aux`).
    pub fn action(a: MitigationAction) -> u16 {
        match a {
            MitigationAction::EcmpReroute => 0,
            MitigationAction::TorFailover => 1,
            MitigationAction::RestartFromCheckpoint => 2,
            MitigationAction::FlowReroute => 3,
            MitigationAction::PowerCapRideThrough => 4,
            MitigationAction::MicroBatchRebalance => 5,
            MitigationAction::ProactiveCheckpoint => 6,
            MitigationAction::LinkProbation => 7,
            MitigationAction::ProbeReadmit => 8,
            MitigationAction::ProactiveTorFailover => 9,
            MitigationAction::Quarantine => 10,
            MitigationAction::Abort => 11,
        }
    }

    /// Code of a diagnosed fault class (`LadderDecision` records, `b`).
    pub fn fault_class(c: FaultClass) -> u16 {
        match c {
            FaultClass::TransientLink => 0,
            FaultClass::OpticalDualTor => 1,
            FaultClass::HardHost => 2,
            FaultClass::FailSlow => 3,
            FaultClass::FlappingLink => 4,
            FaultClass::DegradingOptic => 5,
            FaultClass::GrayStraggler => 6,
        }
    }

    /// Code of an analyzer cause (`SubstrateDiagnosis` records, `aux`).
    pub fn cause(c: CauseClass) -> u16 {
        match c {
            CauseClass::HostEnvironment => 0,
            CauseClass::NicOrLink => 1,
            CauseClass::GpuHardware => 2,
            CauseClass::SoftwareOrUserCode => 3,
            CauseClass::SwitchOrFabric => 4,
            CauseClass::PcieBottleneck => 5,
            CauseClass::Congestion => 6,
            CauseClass::PowerDelivery => 7,
            CauseClass::Cooling => 8,
            CauseClass::Unknown => 9,
        }
    }

    /// Kind code of a scripted network fault (`FaultInject` records,
    /// `aux`).
    pub fn injected_kind(f: &InjectedFault) -> u16 {
        match f {
            InjectedFault::TransientLink { .. } => 0,
            InjectedFault::OpticalUplink { .. } => 1,
            InjectedFault::HostFailure { .. } => 2,
            InjectedFault::FlappingLink { .. } => 3,
            InjectedFault::DegradingOptic { .. } => 4,
            InjectedFault::SlowHost { .. } => 5,
        }
    }
}

/// One detected-and-handled fault.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Iteration during which the alarm fired.
    pub iter: u32,
    /// Diagnosed class.
    pub class: FaultClass,
    /// Resolution.
    pub action: MitigationAction,
    /// Retry attempt number when this incident fired (0 = first).
    pub retries: u32,
    /// Detection + localization time (the MTTLF component).
    pub locate_s: f64,
    /// Mitigation time: backoff, failover, or restart (MTTR - MTTLF).
    pub repair_s: f64,
    /// Links the localization blamed.
    pub blamed: Vec<LinkId>,
    /// Hosts cordoned by this incident.
    pub cordoned: Vec<HostId>,
}

/// Ground truth of one injection, for reporting (never used by recovery).
#[derive(Debug, Clone)]
pub struct InjectionRecord {
    /// The fault as scripted.
    pub fault: InjectedFault,
    /// QPs whose live route crossed the failed link(s) at injection time.
    pub blast_radius: usize,
}

/// End-to-end outcome of a run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Whether every iteration completed.
    pub completed: bool,
    /// Iterations of retained progress: `spec.iters` on completion, the
    /// last checkpoint on an abort (the restart point a requeue resumes
    /// from).
    pub iters_done: u32,
    /// Why the run aborted; `None` when it completed.
    pub abort: Option<AbortReason>,
    /// Spares consumed by cordon-and-replace restarts, in claim order —
    /// the debit a fleet-wide spare-pool arbiter charges this job.
    pub spares_claimed: Vec<HostId>,
    /// Hosts soft-quarantined by the gray detector, in verdict order —
    /// suspect (not dead) capacity a fleet controller should steer new
    /// placements away from until the host is cleared.
    pub quarantined: Vec<HostId>,
    /// Wall-clock that produced retained training progress.
    pub useful_s: f64,
    /// Wall-clock of iterations discarded by checkpoint rollbacks.
    pub lost_rollback_s: f64,
    /// Excess compute wall-clock lost to substrate throttling (power
    /// caps, thermal throttle): the straggler tax of a cascade. Zero when
    /// no substrate is attached.
    pub degraded_s: f64,
    /// Wall-clock spent writing checkpoints.
    pub checkpoint_s: f64,
    /// Detection, backoff, failed attempts, and restart time.
    pub downtime_s: f64,
    /// Incidents in detection order.
    pub incidents: Vec<Incident>,
    /// Scripted injections with their blast radii (ground truth).
    pub injections: Vec<InjectionRecord>,
    /// Cumulative rate-solver work over the whole run (fault handling
    /// forces full solves; healthy iterations stay incremental).
    pub solver: SolverCounters,
    /// The structured event timeline of the run, drained from the
    /// simulator's ring at completion. Empty unless the run's
    /// `NetConfig::trace` was set. Excluded from [`Self::fingerprint`]
    /// (the trace *describes* the run; the fingerprint *is* the run), but
    /// `astral_trace::fingerprint` over it is itself deterministic and
    /// pinned by the replay tests.
    pub trace: Vec<TraceRecord>,
}

impl Drop for RecoveryReport {
    /// Park the timeline's allocation for the next traced run on this
    /// thread (see `astral_trace::recycle`): batteries and benches churn
    /// through reports, and re-faulting a fresh multi-megabyte trace
    /// buffer per run is the dominant recording overhead.
    fn drop(&mut self) {
        astral_trace::recycle(std::mem::take(&mut self.trace));
    }
}

impl RecoveryReport {
    /// Total accounted wall-clock.
    pub fn total_s(&self) -> f64 {
        self.useful_s + self.lost_rollback_s + self.degraded_s + self.checkpoint_s + self.downtime_s
    }

    /// Goodput fraction: useful time over total (the Figure-10 y-axis,
    /// a.k.a. effective-training-time ratio).
    pub fn goodput(&self) -> f64 {
        let t = self.total_s();
        if t > 0.0 {
            self.useful_s / t
        } else {
            1.0
        }
    }

    /// Mean time to recover: alarm to resumed training, per incident.
    pub fn mttr_s(&self) -> Option<f64> {
        let done: Vec<f64> = self
            .incidents
            .iter()
            .filter(|i| i.action != MitigationAction::Abort)
            .map(|i| i.locate_s + i.repair_s)
            .collect();
        (!done.is_empty()).then(|| done.iter().sum::<f64>() / done.len() as f64)
    }

    /// Mean time to locate a failure (detection + localization only).
    pub fn mttlf_s(&self) -> Option<f64> {
        let all: Vec<f64> = self.incidents.iter().map(|i| i.locate_s).collect();
        (!all.is_empty()).then(|| all.iter().sum::<f64>() / all.len() as f64)
    }

    /// A deterministic fingerprint over every semantic field of the run —
    /// float bits, the full incident and injection sequences — but
    /// *excluding* [`SolverCounters`], which legitimately differ between
    /// the incremental and full-rebuild rate solvers while producing the
    /// same rates. Byte-identical fingerprints ⇒ identical runs.
    pub fn fingerprint(&self) -> String {
        let mut s = format!(
            "done:{}·{}·{:?}·{:?}·q{:?}|u:{:016x}|r:{:016x}|g:{:016x}|c:{:016x}|d:{:016x}",
            self.completed,
            self.iters_done,
            self.abort,
            self.spares_claimed,
            self.quarantined,
            self.useful_s.to_bits(),
            self.lost_rollback_s.to_bits(),
            self.degraded_s.to_bits(),
            self.checkpoint_s.to_bits(),
            self.downtime_s.to_bits(),
        );
        for i in &self.incidents {
            s.push_str(&format!(
                "|inc:{}·{:?}·{:?}·{}·{:016x}·{:016x}·{:?}·{:?}",
                i.iter,
                i.class,
                i.action,
                i.retries,
                i.locate_s.to_bits(),
                i.repair_s.to_bits(),
                i.blamed,
                i.cordoned,
            ));
        }
        for j in &self.injections {
            s.push_str(&format!("|inj:{:?}·{}", j.fault, j.blast_radius));
        }
        s
    }
}

/// Run a training job under `policy` with `script`'s faults injected.
/// Deterministic for a fixed (topology, policy, spec, script) tuple.
/// Panics on an invalid policy (see [`RecoveryPolicy::validate`]); use
/// [`try_run_training`] to handle the error instead.
pub fn run_training(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &FaultScript,
) -> RecoveryReport {
    match try_run_training(topo, policy, spec, script) {
        Ok(r) => r,
        Err(e) => panic!("run_training: invalid policy: {e}"),
    }
}

/// [`run_training`] that surfaces policy-validation failures instead of
/// panicking.
pub fn try_run_training(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &FaultScript,
) -> Result<RecoveryReport, PolicyError> {
    try_run_training_placed(
        topo,
        policy,
        spec,
        script,
        &JobPlacement::prefix(spec.hosts, spec.spares),
        None,
    )
}

/// [`try_run_training`] on an explicit [`JobPlacement`] — the multi-tenant
/// entry point: the job's hosts and its spare grant live anywhere in the
/// fabric instead of the fleet prefix. `router` optionally shares a warmed
/// ECMP router across independent runs on the same topology (byte-identical
/// results, setup cost paid once).
pub fn try_run_training_placed(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &FaultScript,
    placement: &JobPlacement,
    router: Option<Arc<Router>>,
) -> Result<RecoveryReport, PolicyError> {
    try_run_training_placed_with(
        topo,
        policy,
        spec,
        script,
        placement,
        router,
        RunnerConfig::default(),
    )
}

/// [`try_run_training_placed`] with an explicit [`RunnerConfig`] — the
/// hook that threads simulator configuration through a full training run,
/// e.g. `NetConfig::sharded_solver` to run the job on the per-pod sharded
/// rate solver instead of the global one.
pub fn try_run_training_placed_with(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &FaultScript,
    placement: &JobPlacement,
    router: Option<Arc<Router>>,
    runner_cfg: RunnerConfig,
) -> Result<RecoveryReport, PolicyError> {
    policy.validate()?;
    let engine = Engine::new(
        topo,
        *policy,
        *spec,
        script.clone(),
        runner_cfg,
        None,
        placement.clone(),
        router,
        CorrelationPrior::default(),
    );
    Ok(engine.run_parts().0)
}

/// One entry of a training battery: an independent (policy, job spec,
/// fault script) triple.
pub type TrainingRun = (RecoveryPolicy, TrainingJobSpec, FaultScript);

/// Run a battery of independent training jobs on the `ASTRAL_THREADS`-sized
/// pool. Reports come back in submission order and each run is an isolated
/// simulation, so the output — fingerprints included — is byte-identical
/// to a serial loop at any thread count. Panics on an invalid policy.
pub fn run_training_battery(topo: &Topology, runs: &[TrainingRun]) -> Vec<RecoveryReport> {
    match try_run_training_battery_with(&astral_exec::Pool::from_env(), topo, runs) {
        Ok(r) => r,
        Err(e) => panic!("run_training_battery: invalid policy: {e}"),
    }
}

/// [`run_training_battery`] on an explicit pool, surfacing policy errors.
/// Policies are validated up front (serially, in submission order) so the
/// first invalid one is reported deterministically regardless of width.
pub fn try_run_training_battery_with(
    pool: &astral_exec::Pool,
    topo: &Topology,
    runs: &[TrainingRun],
) -> Result<Vec<RecoveryReport>, PolicyError> {
    for (policy, _, _) in runs {
        policy.validate()?;
    }
    // Shared-topology fast path: all runs ride one warmed ECMP router, so
    // the per-destination Dijkstra + hop-table setup is paid once per
    // battery instead of once per run. Distance fields are a pure function
    // of the topology (failures are capacity-level inside each private
    // simulator), so results are byte-identical to per-run routers.
    let router = Arc::new(Router::new());
    Ok(pool.map(runs, |(policy, spec, script)| {
        try_run_training_placed(
            topo,
            policy,
            spec,
            script,
            &JobPlacement::prefix(spec.hosts, spec.spares),
            Some(router.clone()),
        )
        .expect("battery policies validated up front")
    }))
}

/// Run the engine with a cascade substrate attached (the
/// [`crate::cascade`] entry point). `script` carries any network-level
/// faults the cascade scenario schedules alongside its substrate faults.
/// The caller has already validated the policy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_with_substrate(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: FaultScript,
    runner_cfg: RunnerConfig,
    substrate: SubstrateState,
    placement: JobPlacement,
    router: Option<Arc<Router>>,
    prior: CorrelationPrior,
) -> (RecoveryReport, SubstrateState) {
    let engine = Engine::new(
        topo,
        *policy,
        *spec,
        script,
        runner_cfg,
        Some(substrate),
        placement,
        router,
        prior,
    );
    let (report, sub) = engine.run_parts();
    (report, sub.expect("substrate passes through the run"))
}

/// Live state of one activated gray fault. Each driver resolves its
/// concrete topology targets (link, host) once at activation — a
/// quarantine swap must not re-aim the fault at the replacement host.
#[derive(Debug, Clone)]
enum GrayDrive {
    /// Square-wave flapper: `next_edge_iter` is monotone, so re-running
    /// an iteration after a rollback is a no-op, never a double edge.
    Flap {
        link: LinkId,
        down: bool,
        downs_done: u32,
        down_len: u32,
        up_len: u32,
        flap_count: u32,
        next_edge_iter: u32,
    },
    /// BER creep on one uplink pair; `frac` only moves forward in
    /// iteration time (`next_it` is monotone, so rollback re-execution of
    /// an earlier iteration is a no-op).
    Optic {
        links: [LinkId; 2],
        frac: f64,
        decay: f64,
        floor: f64,
        next_it: u32,
    },
    /// Slow (optionally intermittent) host ingress.
    Slow {
        host: HostId,
        factor: f64,
        intermittent: bool,
        start_iter: u32,
        degraded: bool,
        next_it: u32,
    },
}

/// One link's probation record: steered around, probed before readmission.
#[derive(Debug, Clone)]
struct Probation {
    /// Iteration the readmission probe runs.
    until_iter: u32,
    /// Escalation level: each failed probe doubles the next window.
    level: u32,
    /// Flap-edge counter at (re)entry — fresh edges fail the probe.
    edges_at_entry: u32,
}

struct Engine<'t> {
    topo: &'t Topology,
    policy: RecoveryPolicy,
    spec: TrainingJobSpec,
    script: FaultScript,
    runner: CollectiveRunner<'t>,
    detector: OnlineDetector,
    rng: SimRng,
    hosts: Vec<HostId>,
    group: Vec<GpuId>,
    spares: Vec<HostId>,
    injected: Vec<bool>,
    /// Transient links awaiting their heal, restored during backoff.
    pending_restores: Vec<LinkId>,
    /// Live gray-fault drivers, parallel to `script.faults` (None for
    /// fail-stop entries and not-yet-activated gray entries). The driver
    /// acts only at iteration tops, so faults replay byte-for-byte.
    gray_drives: Vec<Option<GrayDrive>>,
    /// The suspicion scorer, present only under `policy.gray_detection`
    /// (the faults themselves are injected for every policy).
    gray_detector: Option<GrayDetector>,
    /// Links every steering decision must route around (probation +
    /// proactive failover verdicts).
    avoided_links: BTreeSet<LinkId>,
    /// Probation ledger for suspect flapping links.
    probations: BTreeMap<LinkId, Probation>,
    /// Suspicion verdicts awaiting a healthy iteration to act on.
    pending_verdicts: Vec<GrayVerdict>,
    /// Hosts soft-quarantined by the gray ladder, in verdict order.
    quarantined: Vec<HostId>,
    /// Substrate cascade driver (power/cooling/optics), when attached.
    substrate: Option<SubstrateState>,
    /// A Seer hazard warning is currently live (one proactive checkpoint
    /// per hazard episode).
    hazard_latched: bool,
    /// Iteration of the most recent checkpoint (periodic or proactive).
    last_checkpoint: u32,
    /// Wall-clock of the previous iteration (the substrate clock step).
    last_iter_s: f64,
    // accounting
    iter_useful: Vec<f64>,
    useful_s: f64,
    lost_rollback_s: f64,
    degraded_s: f64,
    checkpoint_s: f64,
    downtime_s: f64,
    restarts: u32,
    abort_reason: Option<AbortReason>,
    spares_claimed: Vec<HostId>,
    incidents: Vec<Incident>,
    injections: Vec<InjectionRecord>,
    /// Mined drill-down prior for the substrate analyzer. The default
    /// (inert) prior reproduces the baseline analyzer byte for byte.
    prior: CorrelationPrior,
}

impl<'t> Engine<'t> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        topo: &'t Topology,
        policy: RecoveryPolicy,
        spec: TrainingJobSpec,
        script: FaultScript,
        runner_cfg: RunnerConfig,
        substrate: Option<SubstrateState>,
        placement: JobPlacement,
        router: Option<Arc<Router>>,
        prior: CorrelationPrior,
    ) -> Self {
        let rails = topo.rails() as u32;
        assert_eq!(
            spec.hosts,
            placement.hosts.len(),
            "placement must cover every rank"
        );
        assert!(
            placement
                .hosts
                .iter()
                .chain(&placement.spares)
                .all(|h| (h.0 as usize) < topo.hosts().len()),
            "placement references hosts outside the fabric"
        );
        let hosts = placement.hosts;
        let spares = placement.spares;
        let group: Vec<GpuId> = hosts.iter().map(|h| GpuId(h.0 * rails)).collect();
        let injected = vec![false; script.faults.len()];
        let gray_drives = vec![None; script.faults.len()];
        let gray_detector = policy.gray_detection.then(|| {
            GrayDetector::new(GrayDetectorConfig {
                suspect_on: policy.gray_suspicion_threshold,
                ..GrayDetectorConfig::default()
            })
        });
        let runner = match router {
            Some(r) => CollectiveRunner::with_router(topo, runner_cfg, r),
            None => CollectiveRunner::new(topo, runner_cfg),
        };
        Engine {
            topo,
            policy,
            spec,
            script,
            runner,
            detector: OnlineDetector::new(OnlineDetectorConfig::default()),
            rng: SimRng::new(spec.seed),
            hosts,
            group,
            spares,
            injected,
            pending_restores: Vec::new(),
            gray_drives,
            gray_detector,
            avoided_links: BTreeSet::new(),
            probations: BTreeMap::new(),
            pending_verdicts: Vec::new(),
            quarantined: Vec::new(),
            substrate,
            hazard_latched: false,
            last_checkpoint: 0,
            last_iter_s: spec.comp_s,
            iter_useful: vec![0.0; spec.iters as usize],
            useful_s: 0.0,
            lost_rollback_s: 0.0,
            degraded_s: 0.0,
            checkpoint_s: 0.0,
            downtime_s: 0.0,
            restarts: 0,
            abort_reason: None,
            spares_claimed: Vec::new(),
            incidents: Vec::new(),
            injections: Vec::new(),
            prior,
        }
    }

    /// Record an incident and emit its `LadderDecision` trace record —
    /// every recovery-ladder step, gray verdict, substrate mitigation,
    /// and proactive checkpoint passes through here, so the trace carries
    /// the full decision timeline.
    fn push_incident(&mut self, inc: Incident) {
        self.runner.sim_mut().trace_record(
            TraceKind::LadderDecision,
            trace_codes::action(inc.action),
            inc.iter,
            u32::from(trace_codes::fault_class(inc.class)),
            inc.blamed.len() as u64,
            inc.cordoned.len() as u64,
        );
        self.incidents.push(inc);
    }

    fn run_parts(mut self) -> (RecoveryReport, Option<SubstrateState>) {
        let mut it = 0u32;
        let mut attempt = 0u32;
        let mut completed = true;

        while it < self.spec.iters {
            if attempt == 0 {
                if it > 0 && it.is_multiple_of(self.policy.checkpoint_interval) {
                    self.checkpoint_s += self.policy.checkpoint_cost_s;
                    self.last_checkpoint = it;
                }
                self.inject_due(it);
                self.gray_drive_tick(it);
                if let Some(forced) = self.substrate_begin_iter(it) {
                    // The DCIM tripped: a rack crossed the critical
                    // temperature. Cordon it, repair, restart.
                    let locate_s = self.policy.detection_overhead_s;
                    self.downtime_s += locate_s;
                    let base = Incident {
                        iter: it,
                        class: FaultClass::FailSlow,
                        action: MitigationAction::RestartFromCheckpoint,
                        retries: 0,
                        locate_s,
                        repair_s: 0.0,
                        blamed: Vec::new(),
                        cordoned: Vec::new(),
                    };
                    let incident = self.restart_with_replacement(base, forced);
                    let action = incident.action;
                    self.push_incident(incident);
                    if action == MitigationAction::Abort {
                        completed = false;
                        break;
                    }
                    self.rollback(self.last_checkpoint, it);
                    it = self.last_checkpoint;
                    attempt = 0;
                    continue;
                }
            }

            // One iteration: the computation phase is pure wall-clock
            // accounting (the net clock only tracks network events, and
            // substrate throttling multiplies the compute time), then the
            // gradient AllReduce runs on the simulator.
            let comp_eff = self.effective_comp_s();
            let res = self.runner.all_reduce_flat(&self.group, self.spec.bytes);
            let events = self.runner.sim_mut().drain_flow_events();
            let aborted: Vec<QpId> = events
                .iter()
                .filter_map(|e| match e {
                    FlowEvent::Aborted { qp, .. } => Some(*qp),
                    FlowEvent::Requeued { .. } => None,
                })
                .collect();
            let iter_s = comp_eff + res.duration.as_secs_f64();
            self.last_iter_s = iter_s;
            // The straggler tax: the slowdown over nominal compute is
            // degraded time, not useful time (Figure-10 accounting).
            let degraded_part = (comp_eff - self.spec.comp_s).max(0.0);
            let useful_part = iter_s - degraded_part;

            let alarm = self.detector.observe_iteration(iter_s, aborted.len());
            self.gray_observe(it);
            let Some(alarm) = alarm else {
                // Healthy from the network's perspective — but the
                // physical-layer DCIM may still be alarming on substrate
                // telemetry (a straggler cascade never aborts a flow).
                for inc in self.substrate_attend(it) {
                    self.push_incident(inc);
                }
                // Gray verdicts also land here: a gray fault, by
                // definition, degrades iterations that still complete.
                for inc in self.gray_attend(it) {
                    self.push_incident(inc);
                }
                self.iter_useful[it as usize] = useful_part;
                self.useful_s += useful_part;
                self.degraded_s += degraded_part;
                it += 1;
                attempt = 0;
                continue;
            };

            // The anomalous attempt's wall-clock: a collective that still
            // delivered (flaky link healed mid-step) retains its progress;
            // one with failed flows produced nothing.
            let produced = res.failed_flows == 0;
            if produced {
                // A slow-but-complete iteration (the Slowdown alarm path):
                // the excess over the detector's healthy baseline is the
                // comm-side straggler tax — degraded, not useful, time,
                // symmetric with the compute-throttle accounting above.
                let slow_tax = self
                    .detector
                    .baseline_s()
                    .map_or(0.0, |b| ((iter_s - b).max(0.0) - degraded_part).max(0.0));
                self.iter_useful[it as usize] = useful_part - slow_tax;
                self.useful_s += useful_part - slow_tax;
                self.degraded_s += degraded_part + slow_tax;
            } else {
                self.downtime_s += iter_s;
            }

            if !self.policy.enabled {
                self.abort_reason = Some(AbortReason::RecoveryDisabled);
                self.push_incident(Incident {
                    iter: it,
                    class: if aborted.is_empty() {
                        FaultClass::FailSlow
                    } else {
                        FaultClass::TransientLink
                    },
                    action: MitigationAction::Abort,
                    retries: attempt,
                    locate_s: 0.0,
                    repair_s: 0.0,
                    blamed: Vec::new(),
                    cordoned: Vec::new(),
                });
                completed = false;
                break;
            }

            let incident = self.recover(it, &alarm, &aborted, attempt);
            let action = incident.action;
            let class = incident.class;
            let rolled_back_to = self.last_checkpoint;
            self.push_incident(incident);
            if let Some(sub) = self.substrate.as_mut() {
                sub.note_incident(it, class);
            }
            match action {
                MitigationAction::Abort => {
                    completed = false;
                    break;
                }
                MitigationAction::RestartFromCheckpoint => {
                    self.rollback(rolled_back_to, it);
                    it = rolled_back_to;
                    attempt = 0;
                }
                MitigationAction::EcmpReroute | MitigationAction::TorFailover => {
                    if produced {
                        // A slow-but-complete iteration still advances, so
                        // gray verdicts must drain here too: a persistent
                        // partial fault alarms the reactive detector every
                        // iteration, and waiting for a clean one would
                        // postpone quarantine forever.
                        for inc in self.gray_attend(it) {
                            self.push_incident(inc);
                        }
                        it += 1;
                        attempt = 0;
                    } else {
                        attempt += 1;
                    }
                }
                // Graceful-degradation and gray actions are applied on
                // healthy iterations via `substrate_attend` / `gray_attend`,
                // never returned from `recover`.
                MitigationAction::FlowReroute
                | MitigationAction::PowerCapRideThrough
                | MitigationAction::MicroBatchRebalance
                | MitigationAction::ProactiveCheckpoint
                | MitigationAction::LinkProbation
                | MitigationAction::ProbeReadmit
                | MitigationAction::ProactiveTorFailover
                | MitigationAction::Quarantine => unreachable!(),
            }
        }

        let trace = self.runner.sim_mut().take_trace();
        let report = RecoveryReport {
            completed,
            iters_done: if completed {
                self.spec.iters
            } else {
                self.last_checkpoint
            },
            abort: if completed { None } else { self.abort_reason },
            spares_claimed: self.spares_claimed,
            quarantined: self.quarantined,
            useful_s: self.useful_s,
            lost_rollback_s: self.lost_rollback_s,
            degraded_s: self.degraded_s,
            checkpoint_s: self.checkpoint_s,
            downtime_s: self.downtime_s,
            incidents: self.incidents,
            injections: self.injections,
            solver: self.runner.sim().solver_counters(),
            trace,
        };
        (report, self.substrate)
    }

    /// Advance the substrate one iteration: inject due faults, kill
    /// optics-burst uplinks, tick the sag/thermal clocks, run the Seer
    /// hazard forecast, and surface any forced cordon (a rack past the
    /// critical inlet temperature that the DCIM pulls out of service).
    fn substrate_begin_iter(&mut self, it: u32) -> Option<Vec<HostId>> {
        let mut sub = self.substrate.take()?;
        let attrs_before = sub.attributions.len();
        let tick = sub.begin_iter(it, self.last_iter_s, &self.hosts);
        // Every cascade that manifested this tick is one SubstrateOnset
        // record; every DCIM trip is one ForcedCordon record.
        for attr in &sub.attributions[attrs_before..] {
            self.runner.sim_mut().trace_record(
                TraceKind::SubstrateOnset,
                attr.class.code(),
                attr.onset_iter,
                attr.blast_hosts as u32,
                0,
                0,
            );
        }
        for &host in &tick.forced_cordon {
            self.runner
                .sim_mut()
                .trace_record(TraceKind::ForcedCordon, 0, host.0, it, 0, 0);
        }
        self.fail_optics_batch(&tick.kill_uplinks);
        let imminent = sub.hazard_imminent(self.policy.seer_lead_iters, self.last_iter_s);
        if imminent
            && !self.hazard_latched
            && self.policy.proactive_checkpoint
            && it > self.last_checkpoint
        {
            // Edge-triggered: one proactive checkpoint per hazard episode.
            self.checkpoint_s += self.policy.checkpoint_cost_s;
            self.last_checkpoint = it;
            self.push_incident(Incident {
                iter: it,
                class: FaultClass::FailSlow,
                action: MitigationAction::ProactiveCheckpoint,
                retries: 0,
                locate_s: 0.0,
                repair_s: self.policy.checkpoint_cost_s,
                blamed: Vec::new(),
                cordoned: Vec::new(),
            });
        }
        self.hazard_latched = imminent;
        self.substrate = Some(sub);
        (!tick.forced_cordon.is_empty()).then_some(tick.forced_cordon)
    }

    /// The DCIM attend path: on a healthy-looking iteration, check for
    /// pending substrate stress (throttled or power-capped racks whose
    /// multipliers never cross the network detector's 2× threshold), build
    /// a full snapshot, let the [`Analyzer`] name the originating
    /// substrate, and apply the policy's mitigation.
    fn substrate_attend(&mut self, it: u32) -> Vec<Incident> {
        if !self.substrate.as_ref().is_some_and(|s| s.stress_pending()) {
            return Vec::new();
        }
        let sub = self.substrate.take().expect("checked above");
        let snap = self.build_snapshot(it, &sub);
        let diag = Analyzer::new().diagnose_with_prior(&snap, self.runner.sim(), &self.prior);
        self.runner.sim_mut().trace_record(
            TraceKind::SubstrateDiagnosis,
            trace_codes::cause(diag.cause),
            it,
            0,
            diag.queries as u64,
            0,
        );
        let locate_s = self.policy.detection_overhead_s;
        self.downtime_s += locate_s;
        let mut sub = sub;
        let engaged = sub.attend(it, diag.cause, self.policy.graceful_degradation);
        let mut incidents = Vec::new();
        if self.policy.graceful_degradation && engaged {
            let action = match diag.cause {
                CauseClass::Cooling => MitigationAction::FlowReroute,
                CauseClass::PowerDelivery => MitigationAction::PowerCapRideThrough,
                _ => MitigationAction::EcmpReroute,
            };
            incidents.push(Incident {
                iter: it,
                class: FaultClass::FailSlow,
                action,
                retries: 0,
                locate_s,
                repair_s: 0.0,
                blamed: Vec::new(),
                cordoned: Vec::new(),
            });
            incidents.push(Incident {
                iter: it,
                class: FaultClass::FailSlow,
                action: MitigationAction::MicroBatchRebalance,
                retries: 0,
                locate_s: 0.0,
                repair_s: 0.0,
                blamed: Vec::new(),
                cordoned: Vec::new(),
            });
        } else {
            // Reactive policies have no substrate levers: the only knob is
            // symptom-level ECMP steering off the hottest links (the
            // FailSlow ladder), which does nothing for a compute-side
            // straggler cascade.
            let hot: Vec<LinkId> = self
                .runner
                .sim()
                .telemetry()
                .hottest_links_by_ecn(2)
                .into_iter()
                .map(|(l, _)| l)
                .collect();
            let qps: Vec<QpId> = self
                .runner
                .sim()
                .telemetry()
                .qp_info
                .keys()
                .copied()
                .collect();
            for qp in qps {
                self.steer_qp(qp, &hot);
            }
            incidents.push(Incident {
                iter: it,
                class: FaultClass::FailSlow,
                action: MitigationAction::EcmpReroute,
                retries: 0,
                locate_s,
                repair_s: 0.0,
                blamed: hot,
                cordoned: Vec::new(),
            });
        }
        self.substrate = Some(sub);
        incidents
    }

    /// A full monitoring snapshot of the job: per-rank progress with the
    /// substrate's compute multipliers folded in, per-host substrate
    /// telemetry, and harvested network counters.
    fn build_snapshot(&self, it: u32, sub: &SubstrateState) -> Snapshot {
        let job = JobDesc {
            job: 0,
            hosts: self.hosts.clone(),
            expected_iters: it.max(1),
            expected_iter_s: self.detector.baseline_s().unwrap_or(self.last_iter_s),
        };
        let mut snap = Snapshot {
            job: Some(job),
            ..Snapshot::default()
        };
        let comm_s = (self.last_iter_s - self.spec.comp_s).max(0.0);
        for (i, &h) in self.hosts.iter().enumerate() {
            snap.ranks.push(RankProgress {
                gpu: self.group[i],
                host: h,
                iters_done: it,
                ops_done: it as u64 * 100,
                comp_time_s: self.spec.comp_s * sub.host_multiplier(h),
                comm_time_s: comm_s,
                error_log: None,
            });
            let telemetry = sub.telemetry(h);
            let mut health = HostHealth::healthy(h);
            health.inlet_temp_c = telemetry.inlet_temp_c;
            health.power_cap_frac = telemetry.power_cap_frac;
            health.thermal_throttle = telemetry.thermal_throttle;
            snap.health.push(health);
        }
        snap.harvest_network(self.runner.sim());
        snap
    }

    /// Per-iteration compute time with the substrate's aggregate
    /// straggler multiplier applied (1.0 when no substrate is attached).
    fn effective_comp_s(&self) -> f64 {
        match &self.substrate {
            Some(sub) => self.spec.comp_s * sub.aggregate_multiplier(&self.hosts),
            None => self.spec.comp_s,
        }
    }

    /// Hard-fail the uplink `host`'s traffic currently rides (both
    /// directions) — the optics-burst kill primitive, shared with the
    /// scripted [`InjectedFault::OpticalUplink`]. Returns the blast
    /// radius.
    fn fail_live_uplink(&mut self, host: HostId) -> usize {
        let now = self.runner.sim().now();
        let nic = self.topo.host(host).nics[0];
        let up = self
            .egress_uplink_in_use(nic)
            .unwrap_or_else(|| self.topo.out_links(nic)[0]);
        let down = self
            .topo
            .link_between(self.topo.link(up).dst, nic)
            .expect("duplex");
        let blast = self.qps_crossing(&[up, down]);
        self.runner.sim_mut().fail_link_at(now, up);
        self.runner.sim_mut().fail_link_at(now, down);
        blast
    }

    /// Kill a correlated optics batch: the failed modules share one
    /// switch linecard, so every victim loses its uplink toward the *same*
    /// ToR (the one the first victim's traffic rides). Each host keeps its
    /// sibling ToR, so the fabric degrades rather than partitions —
    /// killing in-use uplinks independently can cut opposite ToR sides of
    /// adjacent hosts and leave a host pair unroutable under up–down
    /// routing.
    fn fail_optics_batch(&mut self, victims: &[HostId]) {
        let now = self.runner.sim().now();
        let mut batch_tor: Option<NodeId> = None;
        for &host in victims {
            let nic = self.topo.host(host).nics[0];
            let up = batch_tor
                .and_then(|tor| self.topo.link_between(nic, tor))
                .unwrap_or_else(|| {
                    self.egress_uplink_in_use(nic)
                        .unwrap_or_else(|| self.topo.out_links(nic)[0])
                });
            batch_tor.get_or_insert(self.topo.link(up).dst);
            let down = self
                .topo
                .link_between(self.topo.link(up).dst, nic)
                .expect("duplex");
            self.runner.sim_mut().fail_link_at(now, up);
            self.runner.sim_mut().fail_link_at(now, down);
        }
    }

    /// The closed loop for one alarm: localize via probes, pick a
    /// mitigation, apply it, charge its cost.
    fn recover(
        &mut self,
        it: u32,
        alarm: &OnlineAlarm,
        aborted: &[QpId],
        attempt: u32,
    ) -> Incident {
        let locate_s = self.policy.detection_overhead_s;
        self.downtime_s += locate_s;

        let mut incident = Incident {
            iter: it,
            class: FaultClass::TransientLink,
            action: MitigationAction::EcmpReroute,
            retries: attempt,
            locate_s,
            repair_s: 0.0,
            blamed: Vec::new(),
            cordoned: Vec::new(),
        };

        // Escalation ladder: past the retry budget, restart; past the
        // restart budget, give up.
        if attempt > self.policy.retry_budget {
            if self.restarts >= self.policy.max_restarts {
                self.abort_reason = Some(AbortReason::RestartBudgetExhausted);
                incident.action = MitigationAction::Abort;
                return incident;
            }
            self.restarts += 1;
            incident.action = MitigationAction::RestartFromCheckpoint;
            incident.repair_s = self.policy.restart_overhead_s;
            self.downtime_s += self.policy.restart_overhead_s;
            return incident;
        }

        // Pure slowdown: steer flows off the hottest (ECN-marked) links.
        if aborted.is_empty() {
            let _ = alarm;
            incident.class = FaultClass::FailSlow;
            let hot: Vec<LinkId> = self
                .runner
                .sim()
                .telemetry()
                .hottest_links_by_ecn(2)
                .into_iter()
                .map(|(l, _)| l)
                .collect();
            let qps: Vec<QpId> = self
                .runner
                .sim()
                .telemetry()
                .qp_info
                .keys()
                .copied()
                .collect();
            for qp in qps {
                self.steer_qp(qp, &hot);
            }
            incident.blamed = hot;
            return incident;
        }

        // Localization: probe each aborted QP's current path hop by hop;
        // the link after the last answering hop is the culprit.
        let mut blamed: BTreeSet<LinkId> = BTreeSet::new();
        let mut unreachable: Vec<QpId> = Vec::new();
        for &qp in aborted {
            let rec = self.qp_record(qp);
            let probe = self
                .runner
                .sim()
                .int_probe(rec.src_nic, rec.dst_nic, rec.tuple.src_port);
            if probe.reached {
                continue; // healed (transient outage already over)
            }
            if let Some(path) = self
                .runner
                .sim()
                .route(rec.src_nic, rec.dst_nic, &rec.tuple)
            {
                if let Some(&dead) = path.get(probe.hops.len()) {
                    blamed.insert(dead);
                }
            }
            unreachable.push(qp);
        }
        incident.blamed = blamed.iter().copied().collect();

        if unreachable.is_empty() {
            // Transient, self-healed: move the victims off the flaky path
            // so the next flap misses them, then continue.
            for &qp in aborted {
                self.steer_qp(qp, &incident.blamed);
            }
            incident.class = FaultClass::TransientLink;
            incident.action = MitigationAction::EcmpReroute;
            return incident;
        }

        // Try source-port steering around the blamed links.
        let avoid: Vec<LinkId> = blamed.iter().copied().collect();
        let mut dead_qps: Vec<QpId> = Vec::new();
        for &qp in &unreachable {
            if !self.steer_qp(qp, &avoid) {
                dead_qps.push(qp);
            }
        }

        if dead_qps.is_empty() {
            // Every victim found a live path. Host-edge culprit → optical
            // failover onto the surviving ToR port; otherwise a fabric
            // link → plain reroute.
            let edge_nics: Vec<(NodeId, LinkId)> = avoid
                .iter()
                .filter_map(|&l| self.host_edge_nic(l).map(|n| (n, l)))
                .collect();
            if edge_nics.is_empty() {
                incident.class = FaultClass::TransientLink;
                incident.action = MitigationAction::EcmpReroute;
            } else {
                let min_frac = edge_nics
                    .iter()
                    .map(|&(nic, l)| {
                        let total = self.topo.out_links(nic).len().max(1);
                        self.topo.alternate_uplinks(nic, l).len() as f64 / total as f64
                    })
                    .fold(1.0_f64, f64::min);
                if min_frac < self.policy.degraded_bw_floor {
                    // Too degraded to keep: drain the host and re-place.
                    let drained: Vec<HostId> = edge_nics
                        .iter()
                        .filter_map(|&(nic, _)| self.nic_host(nic))
                        .filter(|h| self.hosts.contains(h))
                        .collect();
                    return self.restart_with_replacement(incident, drained);
                }
                incident.class = FaultClass::OpticalDualTor;
                incident.action = MitigationAction::TorFailover;
            }
            // Backoff before the retry (exponential in the attempt).
            // Transient links come back while we wait: their restores are
            // scheduled inside the backoff window and the clock is run
            // past them, so the retry sees a healed fabric.
            let backoff = SimDuration::from_secs_f64(
                self.policy.backoff_base.as_secs_f64() * (1 << attempt.min(16)) as f64,
            );
            let now = self.runner.sim().now();
            for l in std::mem::take(&mut self.pending_restores) {
                self.runner.sim_mut().restore_link_at(now + backoff, l);
            }
            // Drain fully idle: restoring re-admits the failed attempt's
            // flows (they redeliver their remaining bytes), and the retry
            // must not race their completions.
            self.runner
                .sim_mut()
                .run_until(now + backoff + SimDuration::from_micros(1));
            self.runner.sim_mut().run_until_idle();
            incident.repair_s = backoff.as_secs_f64();
            self.downtime_s += incident.repair_s;
            return incident;
        }

        // No steerable path: some endpoint is off the fabric entirely —
        // a hard host fault. Identify the dead side(s) by probing toward
        // a witness NIC, cordon them, and restart on spares.
        let witness = self.witness_nic();
        let mut dead_hosts: BTreeSet<HostId> = BTreeSet::new();
        for &qp in &dead_qps {
            let rec = self.qp_record(qp);
            for nic in [rec.src_nic, rec.dst_nic] {
                if let Some(h) = self.nic_host(nic) {
                    if self.hosts.contains(&h) && !self.nic_reaches(nic, witness) {
                        dead_hosts.insert(h);
                    }
                }
            }
        }
        if dead_hosts.is_empty() {
            // Unsteerable yet both ends alive: the fabric is partitioned
            // beyond what ECMP can route around.
            self.abort_reason = Some(AbortReason::FabricPartitioned);
            incident.class = FaultClass::TransientLink;
            incident.action = MitigationAction::Abort;
            return incident;
        }
        let dead: Vec<HostId> = dead_hosts.into_iter().collect();
        self.restart_with_replacement(incident, dead)
    }

    /// Cordon `drained` hosts, pull spares into the group, and convert the
    /// incident into a checkpoint restart.
    fn restart_with_replacement(
        &mut self,
        mut incident: Incident,
        drained: Vec<HostId>,
    ) -> Incident {
        if self.restarts >= self.policy.max_restarts {
            self.abort_reason = Some(AbortReason::RestartBudgetExhausted);
            incident.action = MitigationAction::Abort;
            return incident;
        }
        let rails = self.topo.rails() as u32;
        for &h in &drained {
            let Some(slot) = self.hosts.iter().position(|&x| x == h) else {
                continue;
            };
            let Some(spare) = self.spares.pop() else {
                self.abort_reason = Some(AbortReason::SparesExhausted);
                incident.action = MitigationAction::Abort;
                incident.cordoned = drained.clone();
                return incident;
            };
            self.spares_claimed.push(spare);
            self.hosts[slot] = spare;
            self.group[slot] = GpuId(spare.0 * rails);
        }
        self.restarts += 1;
        incident.class = FaultClass::HardHost;
        incident.action = MitigationAction::RestartFromCheckpoint;
        incident.cordoned = drained;
        incident.repair_s = self.policy.restart_overhead_s;
        self.downtime_s += self.policy.restart_overhead_s;
        incident
    }

    /// Steer one QP to a source port whose path is alive and avoids
    /// `avoid`; falls back to any alive path, then to any *different*
    /// path. Returns false when no candidate reaches the destination.
    fn steer_qp(&mut self, qp: QpId, avoid: &[LinkId]) -> bool {
        let rec = self.qp_record(qp);
        let cur = self
            .runner
            .sim()
            .route(rec.src_nic, rec.dst_nic, &rec.tuple);
        let base = rec.tuple.src_port.wrapping_sub(EPHEMERAL_BASE);
        let mut fallback: Option<u16> = None;
        for c in 1..=128u16 {
            let sport = EPHEMERAL_BASE.wrapping_add(base.wrapping_add(c.wrapping_mul(197)));
            let probe = self.runner.sim().int_probe(rec.src_nic, rec.dst_nic, sport);
            if !probe.reached {
                continue;
            }
            let path: Vec<LinkId> = probe.hops.iter().map(|h| h.link).collect();
            if path
                .iter()
                .any(|l| avoid.contains(l) || self.avoided_links.contains(l))
            {
                continue;
            }
            if avoid.is_empty() && self.avoided_links.is_empty() && Some(&path) == cur.as_ref() {
                // Asked to move off the current path but this candidate
                // re-hashes onto it; keep it only as a fallback.
                fallback.get_or_insert(sport);
                continue;
            }
            self.runner.sim_mut().reassign_sport(qp, sport);
            return true;
        }
        if let Some(sport) = fallback {
            self.runner.sim_mut().reassign_sport(qp, sport);
            return true;
        }
        false
    }

    /// How many live QPs currently route across any of `links` — the
    /// ground-truth blast radius recorded per injection.
    fn qps_crossing(&self, links: &[LinkId]) -> usize {
        self.runner
            .sim()
            .telemetry()
            .qp_info
            .values()
            .filter(|r| {
                self.runner
                    .sim()
                    .route(r.src_nic, r.dst_nic, &r.tuple)
                    .is_some_and(|p| p.iter().any(|l| links.contains(l)))
            })
            .count()
    }

    /// The uplink currently carried by traffic sourced at `nic`, per the
    /// live QP routes (lowest QP id wins, for determinism).
    fn egress_uplink_in_use(&self, nic: NodeId) -> Option<LinkId> {
        let tel = self.runner.sim().telemetry();
        let mut qps: Vec<(QpId, QpRecord)> = tel
            .qp_info
            .iter()
            .filter(|(_, r)| r.src_nic == nic)
            .map(|(q, r)| (*q, r.clone()))
            .collect();
        qps.sort_by_key(|(q, _)| *q);
        let (_, rec) = qps.first()?;
        let path = self
            .runner
            .sim()
            .route(rec.src_nic, rec.dst_nic, &rec.tuple)?;
        path.first().copied()
    }

    /// Inject the script's faults that are due at iteration `it`.
    fn inject_due(&mut self, it: u32) {
        for i in 0..self.script.faults.len() {
            if self.injected[i] || self.script.faults[i].at_iter() != it {
                continue;
            }
            self.injected[i] = true;
            let fault = self.script.faults[i];
            let blast = self.inject(i, fault);
            self.runner.sim_mut().trace_record(
                TraceKind::FaultInject,
                trace_codes::injected_kind(&fault),
                it,
                blast as u32,
                0,
                0,
            );
            self.injections.push(InjectionRecord {
                fault,
                blast_radius: blast,
            });
        }
    }

    fn inject(&mut self, idx: usize, fault: InjectedFault) -> usize {
        let now = self.runner.sim().now();
        match fault {
            InjectedFault::TransientLink { .. } => {
                // A mid-fabric link some live QP currently routes over
                // (never a host edge), chosen deterministically. The heal
                // is not pre-scheduled — `run_until_idle` inside the
                // collective would drain a future restore and desync the
                // runner's virtual clock — the engine restores the link
                // itself once recovery's backoff has elapsed.
                let Some(l) = self.pick_interior_link() else {
                    return 0;
                };
                let blast = self.qps_crossing(&[l]);
                self.runner.sim_mut().fail_link_at(now, l);
                self.pending_restores.push(l);
                blast
            }
            InjectedFault::OpticalUplink { host_index, .. } => {
                // Kill the side the host's traffic is actually riding, so
                // the fault manifests regardless of how the QPs hashed.
                let host = self.hosts[host_index % self.hosts.len()];
                self.fail_live_uplink(host)
            }
            InjectedFault::HostFailure { host_index, .. } => {
                let host = self.hosts[host_index % self.hosts.len()];
                let nics = self.topo.host(host).nics.clone();
                let mut dead: Vec<LinkId> = Vec::new();
                for nic in nics {
                    for &up in self.topo.out_links(nic) {
                        dead.push(up);
                        if let Some(down) = self.topo.link_between(self.topo.link(up).dst, nic) {
                            dead.push(down);
                        }
                    }
                }
                let blast = self.qps_crossing(&dead);
                for l in dead {
                    self.runner.sim_mut().fail_link_at(now, l);
                }
                blast
            }
            InjectedFault::FlappingLink {
                at_iter,
                period,
                duty_cycle,
                flap_count,
            } => {
                // Same victim choice as TransientLink: an interior link a
                // live QP routes over. The square wave itself runs in
                // `gray_drive_tick` (first down edge this same iteration).
                let Some(l) = self.pick_interior_link() else {
                    return 0;
                };
                let period = period.max(2);
                let down_len = ((period as f64 * duty_cycle).round() as u32).clamp(1, period - 1);
                self.gray_drives[idx] = Some(GrayDrive::Flap {
                    link: l,
                    down: false,
                    downs_done: 0,
                    down_len,
                    up_len: period - down_len,
                    flap_count,
                    next_edge_iter: at_iter,
                });
                self.qps_crossing(&[l])
            }
            InjectedFault::DegradingOptic {
                at_iter,
                host_index,
                decay_per_iter,
                floor,
            } => {
                // Resolve the host's in-use dual-ToR uplink pair once; the
                // creep acts on these concrete links forever after.
                let host = self.hosts[host_index % self.hosts.len()];
                let nic = self.topo.host(host).nics[0];
                let up = self
                    .egress_uplink_in_use(nic)
                    .unwrap_or_else(|| self.topo.out_links(nic)[0]);
                let down = self
                    .topo
                    .link_between(self.topo.link(up).dst, nic)
                    .expect("duplex");
                self.gray_drives[idx] = Some(GrayDrive::Optic {
                    links: [up, down],
                    frac: 1.0,
                    decay: decay_per_iter.clamp(0.01, 0.999),
                    floor: floor.clamp(0.01, 0.99),
                    next_it: at_iter,
                });
                self.qps_crossing(&[up, down])
            }
            InjectedFault::SlowHost {
                at_iter,
                host_index,
                factor,
                intermittent,
            } => {
                let host = self.hosts[host_index % self.hosts.len()];
                let mut edges: Vec<LinkId> = Vec::new();
                for &nic in &self.topo.host(host).nics {
                    for &up in self.topo.out_links(nic) {
                        if let Some(down) = self.topo.link_between(self.topo.link(up).dst, nic) {
                            edges.push(down);
                        }
                    }
                }
                self.gray_drives[idx] = Some(GrayDrive::Slow {
                    host,
                    factor: factor.clamp(0.01, 0.99),
                    intermittent,
                    start_iter: at_iter,
                    degraded: false,
                    next_it: at_iter,
                });
                self.qps_crossing(&edges)
            }
        }
    }

    /// An interior (non-host-edge) link some live QP currently routes
    /// over, chosen deterministically via the run's RNG.
    fn pick_interior_link(&mut self) -> Option<LinkId> {
        let mut candidates: Vec<LinkId> = Vec::new();
        let mut qps: Vec<(QpId, QpRecord)> = self
            .runner
            .sim()
            .telemetry()
            .qp_info
            .iter()
            .map(|(q, r)| (*q, r.clone()))
            .collect();
        qps.sort_by_key(|(q, _)| *q);
        for (_, rec) in &qps {
            if let Some(path) = self
                .runner
                .sim()
                .route(rec.src_nic, rec.dst_nic, &rec.tuple)
            {
                if path.len() >= 3 {
                    candidates.extend(&path[1..path.len() - 1]);
                }
            }
        }
        candidates.sort();
        candidates.dedup();
        candidates
            .get(self.rng.below(candidates.len().max(1) as u64) as usize)
            .copied()
    }

    /// Advance every live gray fault one iteration top. Always runs —
    /// the faults exist regardless of whether the policy can see them —
    /// and every transition lands at `now` while the simulator is idle,
    /// so the runner's virtual clock never desyncs.
    fn gray_drive_tick(&mut self, it: u32) {
        let mut drives = std::mem::take(&mut self.gray_drives);
        let now = self.runner.sim().now();
        let mut touched = false;
        for d in drives.iter_mut().flatten() {
            match d {
                GrayDrive::Flap {
                    link,
                    down,
                    downs_done,
                    down_len,
                    up_len,
                    flap_count,
                    next_edge_iter,
                } => {
                    // `next_edge_iter` is monotone: re-running an earlier
                    // iteration after a rollback is a no-op.
                    if it < *next_edge_iter || (*downs_done >= *flap_count && !*down) {
                        continue;
                    }
                    if *down {
                        self.runner.sim_mut().restore_link_at(now, *link);
                        *down = false;
                        *next_edge_iter = it + *up_len;
                    } else {
                        self.runner.sim_mut().fail_link_at(now, *link);
                        *down = true;
                        *downs_done += 1;
                        *next_edge_iter = it + *down_len;
                    }
                    touched = true;
                }
                GrayDrive::Optic {
                    links,
                    frac,
                    decay,
                    floor,
                    next_it,
                } => {
                    if it < *next_it {
                        continue;
                    }
                    *next_it = it + 1;
                    if *frac <= *floor {
                        continue;
                    }
                    *frac = (*frac * *decay).max(*floor);
                    for &l in links.iter() {
                        self.runner.sim_mut().degrade_link_at(now, l, *frac);
                    }
                    touched = true;
                }
                GrayDrive::Slow {
                    host,
                    factor,
                    intermittent,
                    start_iter,
                    degraded,
                    next_it,
                } => {
                    if it < *next_it {
                        continue;
                    }
                    *next_it = it + 1;
                    let want = !*intermittent || (it - *start_iter).is_multiple_of(2);
                    if want && !*degraded {
                        let _ = self.runner.sim_mut().degrade_host_at(now, *host, *factor);
                        *degraded = true;
                    } else if !want && *degraded {
                        let _ = self.runner.sim_mut().restore_host_at(now, *host);
                        *degraded = false;
                    }
                    touched = true;
                }
            }
        }
        self.gray_drives = drives;
        // Drain before the collective launches: a restore re-admits
        // previously failed flows, and their redeliveries must finish
        // before the runner's per-step clock starts, or a later step would
        // find the simulator ahead of it.
        if touched {
            self.runner.sim_mut().run_until_idle();
        }
    }

    /// Feed the suspicion scorer one iteration of physical-layer evidence
    /// (flap-edge counters + capacity-degraded links). No-op for policies
    /// without gray detection.
    fn gray_observe(&mut self, it: u32) {
        if self.gray_detector.is_none() {
            return;
        }
        let mut flap_edges: Vec<(LinkId, u32)> = self
            .runner
            .sim()
            .telemetry()
            .link_flaps
            .iter()
            .map(|(&l, &e)| (l, e))
            .collect();
        flap_edges.sort_unstable();
        let degraded: Vec<GrayEdge> = self
            .runner
            .sim()
            .degraded_links()
            .into_iter()
            .map(|(l, frac)| GrayEdge {
                link: l,
                frac,
                host_edge: self.host_edge_nic(l).is_some(),
            })
            .collect();
        let sample = GraySample {
            iter: it,
            flap_edges,
            degraded,
        };
        let det = self.gray_detector.as_mut().expect("checked above");
        for ev in det.observe(&sample) {
            if let GrayEvent::Suspect(v) = ev {
                self.pending_verdicts.push(v);
            }
        }
    }

    /// Act on pending suspicion verdicts and run due probation probes.
    /// Called at the end of every iteration that completed (healthy or
    /// alarmed-but-produced): a gray fault, by definition, degrades
    /// iterations that still finish.
    fn gray_attend(&mut self, it: u32) -> Vec<Incident> {
        if self.gray_detector.is_none() {
            return Vec::new();
        }
        let mut incidents = Vec::new();

        // Probation probes due this iteration: a quiet link readmits;
        // fresh flap edges double the next window (exponential backoff).
        let due: Vec<LinkId> = self
            .probations
            .iter()
            .filter(|(_, p)| p.until_iter <= it)
            .map(|(&l, _)| l)
            .collect();
        for l in due {
            let edges_now = self
                .runner
                .sim()
                .telemetry()
                .link_flaps
                .get(&l)
                .copied()
                .unwrap_or(0);
            let p = self.probations.get_mut(&l).expect("due came from the map");
            if edges_now == p.edges_at_entry {
                self.probations.remove(&l);
                self.avoided_links.remove(&l);
                if let Some(d) = self.gray_detector.as_mut() {
                    d.unmute(l);
                }
                incidents.push(Incident {
                    iter: it,
                    class: FaultClass::FlappingLink,
                    action: MitigationAction::ProbeReadmit,
                    retries: 0,
                    locate_s: 0.0,
                    repair_s: 0.0,
                    blamed: vec![l],
                    cordoned: Vec::new(),
                });
            } else {
                p.edges_at_entry = edges_now;
                p.level += 1;
                p.until_iter = it + self.policy.gray_probation_iters * (1u32 << p.level.min(8));
            }
        }

        // Fresh verdicts, in arrival order.
        for v in std::mem::take(&mut self.pending_verdicts) {
            if self.avoided_links.contains(&v.link) {
                continue; // its pair already handled this batch
            }
            match v.pattern {
                GrayPattern::Degrading if v.host_edge => {
                    incidents.push(self.proactive_failover(it, v.link));
                }
                GrayPattern::Steady | GrayPattern::Intermittent if v.host_edge => {
                    if let Some(inc) = self.quarantine_host(it, v.link) {
                        incidents.push(inc);
                    }
                }
                // Flapping — or any recurrent misbehavior on a fabric
                // link, where there is no host to quarantine and no
                // sibling ToR to fail over to: steer around it and let the
                // probation probe readmit it if it recovers.
                _ => incidents.push(self.begin_probation(it, v.link)),
            }
        }
        incidents
    }

    /// Steer every crossing QP off a suspect link and open its probation
    /// window. Detection is passive (the suspicion score rides telemetry
    /// the monitor already collects), so no localization time is charged.
    fn begin_probation(&mut self, it: u32, link: LinkId) -> Incident {
        self.avoided_links.insert(link);
        if let Some(d) = self.gray_detector.as_mut() {
            d.mute(link);
        }
        for qp in self.qps_on_links(&[link]) {
            self.steer_qp(qp, &[link]);
        }
        let edges = self
            .runner
            .sim()
            .telemetry()
            .link_flaps
            .get(&link)
            .copied()
            .unwrap_or(0);
        self.probations.insert(
            link,
            Probation {
                until_iter: it + self.policy.gray_probation_iters,
                level: 0,
                edges_at_entry: edges,
            },
        );
        Incident {
            iter: it,
            class: FaultClass::FlappingLink,
            action: MitigationAction::LinkProbation,
            retries: 0,
            locate_s: 0.0,
            repair_s: 0.0,
            blamed: vec![link],
            cordoned: Vec::new(),
        }
    }

    /// Fail a degrading optic's uplink pair over to the sibling ToR before
    /// it trips the fail-stop ladder. The pair never readmits: BER creep
    /// is monotone, so the module gets replaced off the critical path.
    fn proactive_failover(&mut self, it: u32, link: LinkId) -> Incident {
        let (src, dst) = {
            let l = self.topo.link(link);
            (l.src, l.dst)
        };
        let mut pair = vec![link];
        if let Some(rev) = self.topo.link_between(dst, src) {
            pair.push(rev);
        }
        pair.sort_unstable();
        pair.dedup();
        for &p in &pair {
            self.avoided_links.insert(p);
            if let Some(d) = self.gray_detector.as_mut() {
                d.mute(p);
            }
        }
        for qp in self.qps_on_links(&pair) {
            self.steer_qp(qp, &pair);
        }
        self.downtime_s += self.policy.detection_overhead_s;
        Incident {
            iter: it,
            class: FaultClass::DegradingOptic,
            action: MitigationAction::ProactiveTorFailover,
            retries: 0,
            locate_s: self.policy.detection_overhead_s,
            repair_s: 0.0,
            blamed: pair,
            cordoned: Vec::new(),
        }
    }

    /// Soft-cordon the host behind a suspect edge link: checkpoint at this
    /// iteration boundary, swap a spare in, keep every completed iteration
    /// (no rollback — the difference from the hard-cordon restart path).
    /// Without a free spare the job notes the suspect host and rides out
    /// the slowdown.
    fn quarantine_host(&mut self, it: u32, link: LinkId) -> Option<Incident> {
        let host = self.host_edge_nic(link).and_then(|n| self.nic_host(n))?;
        // Mute every edge link of this host: further evidence from a host
        // already under quarantine is expected and uninformative.
        let mut edges: Vec<LinkId> = Vec::new();
        for &nic in &self.topo.host(host).nics {
            for &up in self.topo.out_links(nic) {
                edges.push(up);
                if let Some(down) = self.topo.link_between(self.topo.link(up).dst, nic) {
                    edges.push(down);
                }
            }
        }
        if let Some(d) = self.gray_detector.as_mut() {
            for &e in &edges {
                d.mute(e);
            }
        }
        if self.quarantined.contains(&host) {
            return None;
        }
        let slot = self.hosts.iter().position(|&h| h == host)?;
        self.downtime_s += self.policy.detection_overhead_s;
        let Some(spare) = self.spares.pop() else {
            // No replacement capacity: flag the host for the fleet's
            // avoid list and keep running degraded.
            self.quarantined.push(host);
            return Some(Incident {
                iter: it,
                class: FaultClass::GrayStraggler,
                action: MitigationAction::Quarantine,
                retries: 0,
                locate_s: self.policy.detection_overhead_s,
                repair_s: 0.0,
                blamed: vec![link],
                cordoned: vec![host],
            });
        };
        // Soft cordon: the boundary checkpoint retains everything done so
        // far, the spare takes over from here.
        self.checkpoint_s += self.policy.checkpoint_cost_s;
        self.last_checkpoint = it + 1;
        self.downtime_s += self.policy.restart_overhead_s;
        self.spares_claimed.push(spare);
        let rails = self.topo.rails() as u32;
        self.hosts[slot] = spare;
        self.group[slot] = GpuId(spare.0 * rails);
        self.quarantined.push(host);
        Some(Incident {
            iter: it,
            class: FaultClass::GrayStraggler,
            action: MitigationAction::Quarantine,
            retries: 0,
            locate_s: self.policy.detection_overhead_s,
            repair_s: self.policy.restart_overhead_s + self.policy.checkpoint_cost_s,
            blamed: vec![link],
            cordoned: vec![host],
        })
    }

    /// QPs whose live route crosses any of `links`, ascending.
    fn qps_on_links(&self, links: &[LinkId]) -> Vec<QpId> {
        let mut qps: Vec<QpId> = self
            .runner
            .sim()
            .telemetry()
            .qp_info
            .values()
            .filter(|r| {
                self.runner
                    .sim()
                    .route(r.src_nic, r.dst_nic, &r.tuple)
                    .is_some_and(|p| p.iter().any(|l| links.contains(l)))
            })
            .map(|r| r.qp)
            .collect();
        qps.sort_unstable();
        qps
    }

    /// Move iterations after the last checkpoint from useful to lost.
    fn rollback(&mut self, to: u32, current: u32) {
        for i in to..current {
            let s = std::mem::take(&mut self.iter_useful[i as usize]);
            self.useful_s -= s;
            self.lost_rollback_s += s;
        }
    }

    fn qp_record(&self, qp: QpId) -> QpRecord {
        self.runner.sim().telemetry().qp_info[&qp].clone()
    }

    fn nic_host(&self, nic: NodeId) -> Option<HostId> {
        match self.topo.node(nic).kind {
            NodeKind::Nic { host, .. } => Some(host),
            _ => None,
        }
    }

    /// A link is "host edge" when one endpoint is a NIC; returns that NIC.
    fn host_edge_nic(&self, l: LinkId) -> Option<NodeId> {
        let link = self.topo.link(l);
        for n in [link.src, link.dst] {
            if matches!(self.topo.node(n).kind, NodeKind::Nic { .. }) {
                return Some(n);
            }
        }
        None
    }

    /// A healthy NIC outside the suspect set, used as a probe target.
    fn witness_nic(&self) -> NodeId {
        let h = self
            .spares
            .first()
            .copied()
            .unwrap_or_else(|| *self.hosts.last().expect("job has hosts"));
        self.topo.host(h).nics[0]
    }

    /// Can `nic` reach `witness` on any of a handful of candidate ports?
    fn nic_reaches(&self, nic: NodeId, witness: NodeId) -> bool {
        if nic == witness {
            return true;
        }
        (0..8u16).any(|c| {
            self.runner
                .sim()
                .int_probe(
                    nic,
                    witness,
                    EPHEMERAL_BASE.wrapping_add(c.wrapping_mul(911)),
                )
                .reached
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astral_topo::{build_astral, AstralParams};

    fn topo() -> Topology {
        build_astral(&AstralParams::sim_small())
    }

    fn quick_spec() -> TrainingJobSpec {
        TrainingJobSpec {
            iters: 10,
            bytes: 4 << 20,
            comp_s: 0.2,
            ..TrainingJobSpec::default()
        }
    }

    #[test]
    fn healthy_run_has_full_goodput_minus_checkpoints() {
        let t = topo();
        let r = run_training(
            &t,
            &RecoveryPolicy::default(),
            &quick_spec(),
            &FaultScript::default(),
        );
        assert!(r.completed);
        assert_eq!(r.iters_done, 10);
        assert!(r.incidents.is_empty());
        assert_eq!(r.downtime_s, 0.0);
        assert_eq!(r.lost_rollback_s, 0.0);
        assert!(r.goodput() > 0.97, "goodput {}", r.goodput());
        // A healthy fabric never needs the full-solve (PFC/degraded) path.
        assert!(r.solver.incremental_solves > 0);
        assert_eq!(r.solver.full_solves, 0);
    }

    #[test]
    fn transient_link_is_rerouted_without_rollback() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::TransientLink {
                at_iter: 3,
                heal_after: SimDuration::from_millis(30),
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        assert_eq!(r.lost_rollback_s, 0.0);
        assert!(!r.incidents.is_empty());
        assert!(r
            .incidents
            .iter()
            .all(|i| i.action == MitigationAction::EcmpReroute));
        assert_eq!(r.injections.len(), 1);
        assert!(r.injections[0].blast_radius > 0);
        assert!(r.mttr_s().unwrap() < 1.0);
    }

    #[test]
    fn optical_fault_fails_over_to_surviving_tor() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::OpticalUplink {
                at_iter: 3,
                host_index: 2,
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        assert!(r
            .incidents
            .iter()
            .any(|i| i.class == FaultClass::OpticalDualTor
                && i.action == MitigationAction::TorFailover));
        // Failover keeps the host: nothing cordoned, no rollback.
        assert!(r.incidents.iter().all(|i| i.cordoned.is_empty()));
        assert_eq!(r.lost_rollback_s, 0.0);
    }

    #[test]
    fn degraded_floor_forces_replacement_instead_of_failover() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::OpticalUplink {
                at_iter: 3,
                host_index: 2,
            }],
        };
        let policy = RecoveryPolicy {
            degraded_bw_floor: 0.9, // half bandwidth unacceptable
            ..RecoveryPolicy::default()
        };
        let r = run_training(&t, &policy, &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        assert!(
            r.incidents
                .iter()
                .any(|i| i.action == MitigationAction::RestartFromCheckpoint
                    && !i.cordoned.is_empty())
        );
    }

    #[test]
    fn hard_host_fault_is_cordoned_and_restarted() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::HostFailure {
                at_iter: 6,
                host_index: 1,
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        let hard: Vec<&Incident> = r
            .incidents
            .iter()
            .filter(|i| i.class == FaultClass::HardHost)
            .collect();
        assert_eq!(hard.len(), 1);
        assert_eq!(hard[0].cordoned, vec![HostId(1)]);
        assert_eq!(hard[0].action, MitigationAction::RestartFromCheckpoint);
        // Rolled back from iteration 6 to the checkpoint at 5.
        assert!(r.lost_rollback_s > 0.0);
    }

    #[test]
    fn disabled_policy_aborts_on_first_fault() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::HostFailure {
                at_iter: 2,
                host_index: 1,
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::disabled(), &quick_spec(), &script);
        assert!(!r.completed);
        assert_eq!(r.incidents.last().unwrap().action, MitigationAction::Abort);
    }

    #[test]
    fn flapping_link_enters_probation_and_readmits() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::FlappingLink {
                at_iter: 3,
                period: 3,
                duty_cycle: 0.34,
                flap_count: 3,
            }],
        };
        let spec = TrainingJobSpec {
            iters: 24,
            ..quick_spec()
        };
        let r = run_training(&t, &RecoveryPolicy::gray_aware(), &spec, &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        let probation: Vec<&Incident> = r
            .incidents
            .iter()
            .filter(|i| i.action == MitigationAction::LinkProbation)
            .collect();
        assert_eq!(probation.len(), 1, "incidents: {:?}", r.incidents);
        assert_eq!(probation[0].class, FaultClass::FlappingLink);
        // The probe readmits the link once a full probation window passes
        // with no fresh flap edges; a mid-probation flap extends it first.
        let readmit: Vec<&Incident> = r
            .incidents
            .iter()
            .filter(|i| i.action == MitigationAction::ProbeReadmit)
            .collect();
        assert_eq!(readmit.len(), 1, "incidents: {:?}", r.incidents);
        assert!(readmit[0].iter > probation[0].iter);
        assert_eq!(readmit[0].blamed, probation[0].blamed);
        // Probation is steering, not cordoning: no hosts touched, no
        // rollback, no spare consumed.
        assert!(r.quarantined.is_empty());
        assert_eq!(r.lost_rollback_s, 0.0);
        assert!(r.spares_claimed.is_empty());
    }

    #[test]
    fn degrading_optic_fails_over_proactively() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::DegradingOptic {
                at_iter: 3,
                host_index: 2,
                decay_per_iter: 0.8,
                floor: 0.3,
            }],
        };
        let spec = TrainingJobSpec {
            iters: 14,
            ..quick_spec()
        };
        let r = run_training(&t, &RecoveryPolicy::gray_aware(), &spec, &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        let failover: Vec<&Incident> = r
            .incidents
            .iter()
            .filter(|i| i.action == MitigationAction::ProactiveTorFailover)
            .collect();
        assert_eq!(failover.len(), 1, "incidents: {:?}", r.incidents);
        assert_eq!(failover[0].class, FaultClass::DegradingOptic);
        // Both directions of the uplink get retired together.
        assert_eq!(failover[0].blamed.len(), 2);
        // BER creep never aborts a flow: the failover happens before the
        // fail-stop ladder ever fires, and nothing rolls back.
        assert!(r
            .incidents
            .iter()
            .all(|i| i.action != MitigationAction::EcmpReroute));
        assert_eq!(r.lost_rollback_s, 0.0);
        assert!(r.quarantined.is_empty());
    }

    #[test]
    fn slow_host_is_quarantined_without_rollback() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::SlowHost {
                at_iter: 4,
                host_index: 2,
                factor: 0.1,
                intermittent: false,
            }],
        };
        // Communication-significant: the 10x-slower host edge must push
        // the iteration past the online detector's 2x slowdown alarm.
        let spec = TrainingJobSpec {
            iters: 20,
            bytes: 256 << 20,
            comp_s: 0.01,
            ..TrainingJobSpec::default()
        };
        let gray = run_training(&t, &RecoveryPolicy::gray_aware(), &spec, &script);
        assert!(gray.completed, "incidents: {:?}", gray.incidents);
        let quarantine: Vec<&Incident> = gray
            .incidents
            .iter()
            .filter(|i| i.action == MitigationAction::Quarantine)
            .collect();
        assert_eq!(quarantine.len(), 1, "incidents: {:?}", gray.incidents);
        assert_eq!(quarantine[0].class, FaultClass::GrayStraggler);
        assert_eq!(quarantine[0].cordoned, vec![HostId(2)]);
        assert_eq!(gray.quarantined, vec![HostId(2)]);
        // Soft cordon: checkpoint at the boundary and swap — nothing lost.
        assert_eq!(gray.lost_rollback_s, 0.0);
        assert_eq!(gray.spares_claimed.len(), 1);

        // The reactive-only baseline keeps paying the blind-steer alarm
        // every slow iteration; quarantining once is strictly better.
        let reactive = run_training(&t, &RecoveryPolicy::reactive_only(), &spec, &script);
        assert!(reactive.completed);
        assert!(reactive.quarantined.is_empty());
        assert!(
            gray.goodput() > reactive.goodput(),
            "gray {} vs reactive {}",
            gray.goodput(),
            reactive.goodput()
        );
    }

    #[test]
    fn fail_stop_faults_never_trip_gray_mitigations() {
        let t = topo();
        // A transient (2 flap edges) and a hard host failure (1 edge per
        // link, never restored) are fail-stop vocabulary: the gray
        // detector must stay quiet and the run must match the
        // reactive-only baseline byte for byte.
        let script = FaultScript {
            faults: vec![
                InjectedFault::TransientLink {
                    at_iter: 3,
                    heal_after: SimDuration::from_millis(30),
                },
                InjectedFault::HostFailure {
                    at_iter: 6,
                    host_index: 1,
                },
            ],
        };
        let gray = run_training(&t, &RecoveryPolicy::gray_aware(), &quick_spec(), &script);
        assert!(gray.completed, "incidents: {:?}", gray.incidents);
        assert!(gray.incidents.iter().all(|i| !matches!(
            i.action,
            MitigationAction::LinkProbation
                | MitigationAction::ProbeReadmit
                | MitigationAction::ProactiveTorFailover
                | MitigationAction::Quarantine
        )));
        assert!(gray.quarantined.is_empty());
        let reactive = run_training(&t, &RecoveryPolicy::reactive_only(), &quick_spec(), &script);
        assert_eq!(gray.fingerprint(), reactive.fingerprint());
    }

    #[test]
    fn gray_campaigns_are_deterministic() {
        let t = topo();
        let script = FaultScript {
            faults: vec![
                InjectedFault::FlappingLink {
                    at_iter: 3,
                    period: 3,
                    duty_cycle: 0.34,
                    flap_count: 3,
                },
                InjectedFault::SlowHost {
                    at_iter: 10,
                    host_index: 5,
                    factor: 0.1,
                    intermittent: true,
                },
                InjectedFault::TransientLink {
                    at_iter: 15,
                    heal_after: SimDuration::from_millis(30),
                },
            ],
        };
        let spec = TrainingJobSpec {
            iters: 26,
            bytes: 256 << 20,
            comp_s: 0.01,
            ..TrainingJobSpec::default()
        };
        let a = run_training(&t, &RecoveryPolicy::gray_aware(), &spec, &script);
        let b = run_training(&t, &RecoveryPolicy::gray_aware(), &spec, &script);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.completed, "incidents: {:?}", a.incidents);
    }

    #[test]
    fn policy_rejects_bad_gray_knobs() {
        let bad_probation = RecoveryPolicy {
            gray_probation_iters: 0,
            ..RecoveryPolicy::gray_aware()
        };
        assert_eq!(
            bad_probation.validate(),
            Err(PolicyError::ZeroGrayProbation)
        );
        let bad_threshold = RecoveryPolicy {
            gray_suspicion_threshold: 1.5,
            ..RecoveryPolicy::gray_aware()
        };
        assert_eq!(
            bad_threshold.validate(),
            Err(PolicyError::GrayThresholdOutOfRange { value: 1.5 })
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let t = topo();
        let script = FaultScript {
            faults: vec![
                InjectedFault::TransientLink {
                    at_iter: 2,
                    heal_after: SimDuration::from_millis(30),
                },
                InjectedFault::HostFailure {
                    at_iter: 6,
                    host_index: 3,
                },
            ],
        };
        let a = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        let b = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert_eq!(a.goodput(), b.goodput());
        assert_eq!(a.incidents.len(), b.incidents.len());
        assert_eq!(a.useful_s, b.useful_s);
        assert_eq!(a.downtime_s, b.downtime_s);
    }
}
