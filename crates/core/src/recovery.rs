//! Closed-loop failure lifecycle engine: detect → localize → mitigate →
//! resume (paper §3, §5; Figure 7 fault classes, Figure 10 goodput).
//!
//! [`run_training`] drives a training job iteration by iteration on the
//! flow-level network simulator, with faults injected mid-run from a
//! [`FaultScript`]. Detection is *online* — the monitor's
//! [`OnlineDetector`] sees only per-iteration observables (duration, flow
//! aborts) — and localization is *observational*: the engine walks INT
//! probes hop by hop to find the dead link, exactly as the analyzer's
//! drill-down would, never peeking at the injected ground truth.
//!
//! Mitigation follows the paper's playbook per fault class:
//!
//! * **transient NIC/link faults** — ECMP source-port reassignment steers
//!   the victim QPs off the flaky path (the §2.1 managed-ECMP controller
//!   knob), and the iteration is retried under exponential backoff with a
//!   bounded retry budget;
//! * **optical faults on dual-ToR hosts** — traffic fails over to the
//!   surviving ToR port at degraded bandwidth (property P3), unless the
//!   surviving fraction is below the policy's floor, in which case the
//!   host is drained and replaced;
//! * **hard host faults** — the host is cordoned, a spare takes its
//!   place, and the job restarts from the last checkpoint.
//!
//! The engine accounts goodput the way Figure 10 does: wall-clock is
//! partitioned into useful training, work lost to rollback, checkpoint
//! overhead, and downtime (detection, backoff, restart), yielding an
//! effective-training-time ratio plus MTTR/MTTLF per incident.

use astral_collectives::{CollectiveRunner, RunnerConfig};
use astral_monitor::{OnlineAlarm, OnlineDetector, OnlineDetectorConfig, RootCause};
use astral_net::{FlowEvent, QpId, QpRecord, SolverCounters, EPHEMERAL_BASE};
use astral_sim::{SimDuration, SimRng};
use astral_topo::{GpuId, HostId, LinkId, NodeId, NodeKind, Topology};
use std::collections::BTreeSet;

/// Tunable recovery behaviour — the policy axis the Figure-10 goodput
/// sweep explores.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Master switch: disabled means the first alarm aborts the job.
    pub enabled: bool,
    /// Iterations between checkpoints.
    pub checkpoint_interval: u32,
    /// Wall-clock cost of writing one checkpoint.
    pub checkpoint_cost_s: f64,
    /// Mitigate-and-retry attempts per iteration before escalating to a
    /// checkpoint restart.
    pub retry_budget: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Time the monitor needs to raise and localize an alarm.
    pub detection_overhead_s: f64,
    /// Re-placement + checkpoint-restore cost for a restart.
    pub restart_overhead_s: f64,
    /// Minimum surviving-uplink fraction for a dual-ToR failover; hosts
    /// degraded below this are drained and replaced instead.
    pub degraded_bw_floor: f64,
    /// Checkpoint restarts allowed before the job is declared lost.
    pub max_restarts: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            checkpoint_interval: 5,
            checkpoint_cost_s: 0.05,
            retry_budget: 3,
            backoff_base: SimDuration::from_millis(50),
            detection_overhead_s: 0.2,
            restart_overhead_s: 0.5,
            degraded_bw_floor: 0.4,
            max_restarts: 3,
        }
    }
}

impl RecoveryPolicy {
    /// The ablation baseline: no recovery, first fault kills the job.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::default()
        }
    }
}

/// Shape of the simulated training job.
#[derive(Debug, Clone, Copy)]
pub struct TrainingJobSpec {
    /// Hosts in the job (one rank on rail 0 of each).
    pub hosts: usize,
    /// Healthy spare hosts kept warm for re-placement.
    pub spares: usize,
    /// Iterations to complete.
    pub iters: u32,
    /// AllReduce payload per iteration.
    pub bytes: u64,
    /// Per-iteration computation time.
    pub comp_s: f64,
    /// RNG seed (victim-link choice, steering candidates).
    pub seed: u64,
}

impl Default for TrainingJobSpec {
    fn default() -> Self {
        TrainingJobSpec {
            hosts: 16,
            spares: 2,
            iters: 20,
            bytes: 16 << 20,
            comp_s: 0.5,
            seed: 7,
        }
    }
}

/// One fault to inject mid-run (Figure 7 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// A mid-fabric link flaps: hard-fails on an active path, healing on
    /// its own while recovery backs off.
    TransientLink {
        /// Iteration at whose start the failure lands.
        at_iter: u32,
        /// Nominal outage duration (the link is back by the time the
        /// engine's retry backoff has elapsed).
        heal_after: SimDuration,
    },
    /// An optical module on one dual-ToR uplink of a job host dies for
    /// good (fiber + both directions).
    OpticalUplink {
        /// Iteration at whose start the failure lands.
        at_iter: u32,
        /// Index into the job's host list.
        host_index: usize,
    },
    /// A job host dies outright: every NIC port goes dark.
    HostFailure {
        /// Iteration at whose start the failure lands.
        at_iter: u32,
        /// Index into the job's host list.
        host_index: usize,
    },
}

impl InjectedFault {
    fn at_iter(&self) -> u32 {
        match *self {
            InjectedFault::TransientLink { at_iter, .. }
            | InjectedFault::OpticalUplink { at_iter, .. }
            | InjectedFault::HostFailure { at_iter, .. } => at_iter,
        }
    }
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// Faults, any order; the engine injects each at its iteration.
    pub faults: Vec<InjectedFault>,
}

/// What the engine concluded a fault was (from observables only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A link that aborted flows but healed / was steerable mid-fabric.
    TransientLink,
    /// A dead host-edge uplink with a surviving dual-ToR sibling.
    OpticalDualTor,
    /// A host no probe can reach.
    HardHost,
    /// A persistent slowdown without aborts.
    FailSlow,
}

impl FaultClass {
    /// The Figure-7 root cause this class maps onto.
    pub fn root_cause(&self) -> RootCause {
        match self {
            FaultClass::TransientLink => RootCause::LinkFlap,
            FaultClass::OpticalDualTor => RootCause::OpticalFiber,
            FaultClass::HardHost => RootCause::GpuHardware,
            FaultClass::FailSlow => RootCause::SwitchConfig,
        }
    }
}

/// How an incident was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Victim QPs steered to new source ports; iteration retried.
    EcmpReroute,
    /// Traffic moved to the surviving ToR port (degraded bandwidth).
    TorFailover,
    /// Host(s) cordoned / drained, spare placed, job rolled back to the
    /// last checkpoint.
    RestartFromCheckpoint,
    /// Recovery gave up (or was disabled).
    Abort,
}

/// One detected-and-handled fault.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Iteration during which the alarm fired.
    pub iter: u32,
    /// Diagnosed class.
    pub class: FaultClass,
    /// Resolution.
    pub action: MitigationAction,
    /// Retry attempt number when this incident fired (0 = first).
    pub retries: u32,
    /// Detection + localization time (the MTTLF component).
    pub locate_s: f64,
    /// Mitigation time: backoff, failover, or restart (MTTR - MTTLF).
    pub repair_s: f64,
    /// Links the localization blamed.
    pub blamed: Vec<LinkId>,
    /// Hosts cordoned by this incident.
    pub cordoned: Vec<HostId>,
}

/// Ground truth of one injection, for reporting (never used by recovery).
#[derive(Debug, Clone)]
pub struct InjectionRecord {
    /// The fault as scripted.
    pub fault: InjectedFault,
    /// QPs whose live route crossed the failed link(s) at injection time.
    pub blast_radius: usize,
}

/// End-to-end outcome of a run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Whether every iteration completed.
    pub completed: bool,
    /// Iterations finished (≤ spec.iters).
    pub iters_done: u32,
    /// Wall-clock that produced retained training progress.
    pub useful_s: f64,
    /// Wall-clock of iterations discarded by checkpoint rollbacks.
    pub lost_rollback_s: f64,
    /// Wall-clock spent writing checkpoints.
    pub checkpoint_s: f64,
    /// Detection, backoff, failed attempts, and restart time.
    pub downtime_s: f64,
    /// Incidents in detection order.
    pub incidents: Vec<Incident>,
    /// Scripted injections with their blast radii (ground truth).
    pub injections: Vec<InjectionRecord>,
    /// Cumulative rate-solver work over the whole run (fault handling
    /// forces full solves; healthy iterations stay incremental).
    pub solver: SolverCounters,
}

impl RecoveryReport {
    /// Total accounted wall-clock.
    pub fn total_s(&self) -> f64 {
        self.useful_s + self.lost_rollback_s + self.checkpoint_s + self.downtime_s
    }

    /// Goodput fraction: useful time over total (the Figure-10 y-axis,
    /// a.k.a. effective-training-time ratio).
    pub fn goodput(&self) -> f64 {
        let t = self.total_s();
        if t > 0.0 {
            self.useful_s / t
        } else {
            1.0
        }
    }

    /// Mean time to recover: alarm to resumed training, per incident.
    pub fn mttr_s(&self) -> Option<f64> {
        let done: Vec<f64> = self
            .incidents
            .iter()
            .filter(|i| i.action != MitigationAction::Abort)
            .map(|i| i.locate_s + i.repair_s)
            .collect();
        (!done.is_empty()).then(|| done.iter().sum::<f64>() / done.len() as f64)
    }

    /// Mean time to locate a failure (detection + localization only).
    pub fn mttlf_s(&self) -> Option<f64> {
        let all: Vec<f64> = self.incidents.iter().map(|i| i.locate_s).collect();
        (!all.is_empty()).then(|| all.iter().sum::<f64>() / all.len() as f64)
    }
}

/// Run a training job under `policy` with `script`'s faults injected.
/// Deterministic for a fixed (topology, policy, spec, script) tuple.
pub fn run_training(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &FaultScript,
) -> RecoveryReport {
    Engine::new(topo, *policy, *spec, script.clone()).run()
}

struct Engine<'t> {
    topo: &'t Topology,
    policy: RecoveryPolicy,
    spec: TrainingJobSpec,
    script: FaultScript,
    runner: CollectiveRunner<'t>,
    detector: OnlineDetector,
    rng: SimRng,
    hosts: Vec<HostId>,
    group: Vec<GpuId>,
    spares: Vec<HostId>,
    injected: Vec<bool>,
    /// Transient links awaiting their heal, restored during backoff.
    pending_restores: Vec<LinkId>,
    // accounting
    iter_useful: Vec<f64>,
    useful_s: f64,
    lost_rollback_s: f64,
    checkpoint_s: f64,
    downtime_s: f64,
    restarts: u32,
    incidents: Vec<Incident>,
    injections: Vec<InjectionRecord>,
}

impl<'t> Engine<'t> {
    fn new(
        topo: &'t Topology,
        policy: RecoveryPolicy,
        spec: TrainingJobSpec,
        script: FaultScript,
    ) -> Self {
        let rails = topo.rails() as u32;
        assert!(
            spec.hosts + spec.spares <= topo.hosts().len(),
            "job + spares exceed the fleet"
        );
        let hosts: Vec<HostId> = (0..spec.hosts as u32).map(HostId).collect();
        let spares: Vec<HostId> = (spec.hosts as u32..(spec.hosts + spec.spares) as u32)
            .map(HostId)
            .collect();
        let group: Vec<GpuId> = hosts.iter().map(|h| GpuId(h.0 * rails)).collect();
        let injected = vec![false; script.faults.len()];
        Engine {
            topo,
            policy,
            spec,
            script,
            runner: CollectiveRunner::new(topo, RunnerConfig::default()),
            detector: OnlineDetector::new(OnlineDetectorConfig::default()),
            rng: SimRng::new(spec.seed),
            hosts,
            group,
            spares,
            injected,
            pending_restores: Vec::new(),
            iter_useful: vec![0.0; spec.iters as usize],
            useful_s: 0.0,
            lost_rollback_s: 0.0,
            checkpoint_s: 0.0,
            downtime_s: 0.0,
            restarts: 0,
            incidents: Vec::new(),
            injections: Vec::new(),
        }
    }

    fn run(mut self) -> RecoveryReport {
        let mut it = 0u32;
        let mut attempt = 0u32;
        let mut completed = true;

        while it < self.spec.iters {
            if attempt == 0 {
                if it > 0 && it.is_multiple_of(self.policy.checkpoint_interval) {
                    self.checkpoint_s += self.policy.checkpoint_cost_s;
                }
                self.inject_due(it);
            }

            // One iteration: the computation phase is pure wall-clock
            // accounting (the net clock only tracks network events), then
            // the gradient AllReduce runs on the simulator.
            let res = self.runner.all_reduce_flat(&self.group, self.spec.bytes);
            let events = self.runner.sim_mut().drain_flow_events();
            let aborted: Vec<QpId> = events
                .iter()
                .filter_map(|e| match e {
                    FlowEvent::Aborted { qp, .. } => Some(*qp),
                    FlowEvent::Requeued { .. } => None,
                })
                .collect();
            let iter_s = self.spec.comp_s + res.duration.as_secs_f64();

            let alarm = self.detector.observe_iteration(iter_s, aborted.len());
            let Some(alarm) = alarm else {
                self.iter_useful[it as usize] = iter_s;
                self.useful_s += iter_s;
                it += 1;
                attempt = 0;
                continue;
            };

            // The anomalous attempt's wall-clock: a collective that still
            // delivered (flaky link healed mid-step) retains its progress;
            // one with failed flows produced nothing.
            let produced = res.failed_flows == 0;
            if produced {
                self.iter_useful[it as usize] = iter_s;
                self.useful_s += iter_s;
            } else {
                self.downtime_s += iter_s;
            }

            if !self.policy.enabled {
                self.incidents.push(Incident {
                    iter: it,
                    class: if aborted.is_empty() {
                        FaultClass::FailSlow
                    } else {
                        FaultClass::TransientLink
                    },
                    action: MitigationAction::Abort,
                    retries: attempt,
                    locate_s: 0.0,
                    repair_s: 0.0,
                    blamed: Vec::new(),
                    cordoned: Vec::new(),
                });
                completed = false;
                break;
            }

            let incident = self.recover(it, &alarm, &aborted, attempt);
            let action = incident.action;
            let rolled_back_to = self.checkpoint_before(it);
            self.incidents.push(incident);
            match action {
                MitigationAction::Abort => {
                    completed = false;
                    break;
                }
                MitigationAction::RestartFromCheckpoint => {
                    self.rollback(rolled_back_to, it);
                    it = rolled_back_to;
                    attempt = 0;
                }
                MitigationAction::EcmpReroute | MitigationAction::TorFailover => {
                    if produced {
                        it += 1;
                        attempt = 0;
                    } else {
                        attempt += 1;
                    }
                }
            }
        }

        RecoveryReport {
            completed,
            iters_done: if completed { self.spec.iters } else { 0 },
            useful_s: self.useful_s,
            lost_rollback_s: self.lost_rollback_s,
            checkpoint_s: self.checkpoint_s,
            downtime_s: self.downtime_s,
            incidents: self.incidents,
            injections: self.injections,
            solver: self.runner.sim().solver_counters(),
        }
    }

    /// The closed loop for one alarm: localize via probes, pick a
    /// mitigation, apply it, charge its cost.
    fn recover(
        &mut self,
        it: u32,
        alarm: &OnlineAlarm,
        aborted: &[QpId],
        attempt: u32,
    ) -> Incident {
        let locate_s = self.policy.detection_overhead_s;
        self.downtime_s += locate_s;

        let mut incident = Incident {
            iter: it,
            class: FaultClass::TransientLink,
            action: MitigationAction::EcmpReroute,
            retries: attempt,
            locate_s,
            repair_s: 0.0,
            blamed: Vec::new(),
            cordoned: Vec::new(),
        };

        // Escalation ladder: past the retry budget, restart; past the
        // restart budget, give up.
        if attempt > self.policy.retry_budget {
            if self.restarts >= self.policy.max_restarts {
                incident.action = MitigationAction::Abort;
                return incident;
            }
            self.restarts += 1;
            incident.action = MitigationAction::RestartFromCheckpoint;
            incident.repair_s = self.policy.restart_overhead_s;
            self.downtime_s += self.policy.restart_overhead_s;
            return incident;
        }

        // Pure slowdown: steer flows off the hottest (ECN-marked) links.
        if aborted.is_empty() {
            let _ = alarm;
            incident.class = FaultClass::FailSlow;
            let hot: Vec<LinkId> = self
                .runner
                .sim()
                .telemetry()
                .hottest_links_by_ecn(2)
                .into_iter()
                .map(|(l, _)| l)
                .collect();
            let qps: Vec<QpId> = self
                .runner
                .sim()
                .telemetry()
                .qp_info
                .keys()
                .copied()
                .collect();
            for qp in qps {
                self.steer_qp(qp, &hot);
            }
            incident.blamed = hot;
            return incident;
        }

        // Localization: probe each aborted QP's current path hop by hop;
        // the link after the last answering hop is the culprit.
        let mut blamed: BTreeSet<LinkId> = BTreeSet::new();
        let mut unreachable: Vec<QpId> = Vec::new();
        for &qp in aborted {
            let rec = self.qp_record(qp);
            let probe = self
                .runner
                .sim()
                .int_probe(rec.src_nic, rec.dst_nic, rec.tuple.src_port);
            if probe.reached {
                continue; // healed (transient outage already over)
            }
            if let Some(path) = self
                .runner
                .sim()
                .route(rec.src_nic, rec.dst_nic, &rec.tuple)
            {
                if let Some(&dead) = path.get(probe.hops.len()) {
                    blamed.insert(dead);
                }
            }
            unreachable.push(qp);
        }
        incident.blamed = blamed.iter().copied().collect();

        if unreachable.is_empty() {
            // Transient, self-healed: move the victims off the flaky path
            // so the next flap misses them, then continue.
            for &qp in aborted {
                self.steer_qp(qp, &incident.blamed);
            }
            incident.class = FaultClass::TransientLink;
            incident.action = MitigationAction::EcmpReroute;
            return incident;
        }

        // Try source-port steering around the blamed links.
        let avoid: Vec<LinkId> = blamed.iter().copied().collect();
        let mut dead_qps: Vec<QpId> = Vec::new();
        for &qp in &unreachable {
            if !self.steer_qp(qp, &avoid) {
                dead_qps.push(qp);
            }
        }

        if dead_qps.is_empty() {
            // Every victim found a live path. Host-edge culprit → optical
            // failover onto the surviving ToR port; otherwise a fabric
            // link → plain reroute.
            let edge_nics: Vec<(NodeId, LinkId)> = avoid
                .iter()
                .filter_map(|&l| self.host_edge_nic(l).map(|n| (n, l)))
                .collect();
            if edge_nics.is_empty() {
                incident.class = FaultClass::TransientLink;
                incident.action = MitigationAction::EcmpReroute;
            } else {
                let min_frac = edge_nics
                    .iter()
                    .map(|&(nic, l)| {
                        let total = self.topo.out_links(nic).len().max(1);
                        self.topo.alternate_uplinks(nic, l).len() as f64 / total as f64
                    })
                    .fold(1.0_f64, f64::min);
                if min_frac < self.policy.degraded_bw_floor {
                    // Too degraded to keep: drain the host and re-place.
                    let drained: Vec<HostId> = edge_nics
                        .iter()
                        .filter_map(|&(nic, _)| self.nic_host(nic))
                        .filter(|h| self.hosts.contains(h))
                        .collect();
                    return self.restart_with_replacement(incident, drained);
                }
                incident.class = FaultClass::OpticalDualTor;
                incident.action = MitigationAction::TorFailover;
            }
            // Backoff before the retry (exponential in the attempt).
            // Transient links come back while we wait: their restores are
            // scheduled inside the backoff window and the clock is run
            // past them, so the retry sees a healed fabric.
            let backoff = SimDuration::from_secs_f64(
                self.policy.backoff_base.as_secs_f64() * (1 << attempt.min(16)) as f64,
            );
            let now = self.runner.sim().now();
            for l in std::mem::take(&mut self.pending_restores) {
                self.runner.sim_mut().restore_link_at(now + backoff, l);
            }
            // Drain fully idle: restoring re-admits the failed attempt's
            // flows (they redeliver their remaining bytes), and the retry
            // must not race their completions.
            self.runner
                .sim_mut()
                .run_until(now + backoff + SimDuration::from_micros(1));
            self.runner.sim_mut().run_until_idle();
            incident.repair_s = backoff.as_secs_f64();
            self.downtime_s += incident.repair_s;
            return incident;
        }

        // No steerable path: some endpoint is off the fabric entirely —
        // a hard host fault. Identify the dead side(s) by probing toward
        // a witness NIC, cordon them, and restart on spares.
        let witness = self.witness_nic();
        let mut dead_hosts: BTreeSet<HostId> = BTreeSet::new();
        for &qp in &dead_qps {
            let rec = self.qp_record(qp);
            for nic in [rec.src_nic, rec.dst_nic] {
                if let Some(h) = self.nic_host(nic) {
                    if self.hosts.contains(&h) && !self.nic_reaches(nic, witness) {
                        dead_hosts.insert(h);
                    }
                }
            }
        }
        if dead_hosts.is_empty() {
            // Unsteerable yet both ends alive: the fabric is partitioned
            // beyond what ECMP can route around.
            incident.class = FaultClass::TransientLink;
            incident.action = MitigationAction::Abort;
            return incident;
        }
        let dead: Vec<HostId> = dead_hosts.into_iter().collect();
        self.restart_with_replacement(incident, dead)
    }

    /// Cordon `drained` hosts, pull spares into the group, and convert the
    /// incident into a checkpoint restart.
    fn restart_with_replacement(
        &mut self,
        mut incident: Incident,
        drained: Vec<HostId>,
    ) -> Incident {
        if self.restarts >= self.policy.max_restarts {
            incident.action = MitigationAction::Abort;
            return incident;
        }
        let rails = self.topo.rails() as u32;
        for &h in &drained {
            let Some(slot) = self.hosts.iter().position(|&x| x == h) else {
                continue;
            };
            let Some(spare) = self.spares.pop() else {
                incident.action = MitigationAction::Abort;
                incident.cordoned = drained.clone();
                return incident;
            };
            self.hosts[slot] = spare;
            self.group[slot] = GpuId(spare.0 * rails);
        }
        self.restarts += 1;
        incident.class = FaultClass::HardHost;
        incident.action = MitigationAction::RestartFromCheckpoint;
        incident.cordoned = drained;
        incident.repair_s = self.policy.restart_overhead_s;
        self.downtime_s += self.policy.restart_overhead_s;
        incident
    }

    /// Steer one QP to a source port whose path is alive and avoids
    /// `avoid`; falls back to any alive path, then to any *different*
    /// path. Returns false when no candidate reaches the destination.
    fn steer_qp(&mut self, qp: QpId, avoid: &[LinkId]) -> bool {
        let rec = self.qp_record(qp);
        let cur = self
            .runner
            .sim()
            .route(rec.src_nic, rec.dst_nic, &rec.tuple);
        let base = rec.tuple.src_port.wrapping_sub(EPHEMERAL_BASE);
        let mut fallback: Option<u16> = None;
        for c in 1..=128u16 {
            let sport = EPHEMERAL_BASE.wrapping_add(base.wrapping_add(c.wrapping_mul(197)));
            let probe = self.runner.sim().int_probe(rec.src_nic, rec.dst_nic, sport);
            if !probe.reached {
                continue;
            }
            let path: Vec<LinkId> = probe.hops.iter().map(|h| h.link).collect();
            if path.iter().any(|l| avoid.contains(l)) {
                continue;
            }
            if avoid.is_empty() && Some(&path) == cur.as_ref() {
                // Asked to move off the current path but this candidate
                // re-hashes onto it; keep it only as a fallback.
                fallback.get_or_insert(sport);
                continue;
            }
            self.runner.sim_mut().reassign_sport(qp, sport);
            return true;
        }
        if let Some(sport) = fallback {
            self.runner.sim_mut().reassign_sport(qp, sport);
            return true;
        }
        false
    }

    /// How many live QPs currently route across any of `links` — the
    /// ground-truth blast radius recorded per injection.
    fn qps_crossing(&self, links: &[LinkId]) -> usize {
        self.runner
            .sim()
            .telemetry()
            .qp_info
            .values()
            .filter(|r| {
                self.runner
                    .sim()
                    .route(r.src_nic, r.dst_nic, &r.tuple)
                    .is_some_and(|p| p.iter().any(|l| links.contains(l)))
            })
            .count()
    }

    /// The uplink currently carried by traffic sourced at `nic`, per the
    /// live QP routes (lowest QP id wins, for determinism).
    fn egress_uplink_in_use(&self, nic: NodeId) -> Option<LinkId> {
        let tel = self.runner.sim().telemetry();
        let mut qps: Vec<(QpId, QpRecord)> = tel
            .qp_info
            .iter()
            .filter(|(_, r)| r.src_nic == nic)
            .map(|(q, r)| (*q, r.clone()))
            .collect();
        qps.sort_by_key(|(q, _)| *q);
        let (_, rec) = qps.first()?;
        let path = self
            .runner
            .sim()
            .route(rec.src_nic, rec.dst_nic, &rec.tuple)?;
        path.first().copied()
    }

    /// Inject the script's faults that are due at iteration `it`.
    fn inject_due(&mut self, it: u32) {
        for i in 0..self.script.faults.len() {
            if self.injected[i] || self.script.faults[i].at_iter() != it {
                continue;
            }
            self.injected[i] = true;
            let fault = self.script.faults[i];
            let blast = self.inject(fault);
            self.injections.push(InjectionRecord {
                fault,
                blast_radius: blast,
            });
        }
    }

    fn inject(&mut self, fault: InjectedFault) -> usize {
        let now = self.runner.sim().now();
        match fault {
            InjectedFault::TransientLink { .. } => {
                // A mid-fabric link some live QP currently routes over
                // (never a host edge), chosen deterministically. The heal
                // is not pre-scheduled — `run_until_idle` inside the
                // collective would drain a future restore and desync the
                // runner's virtual clock — the engine restores the link
                // itself once recovery's backoff has elapsed.
                let mut candidates: Vec<LinkId> = Vec::new();
                let mut qps: Vec<(QpId, QpRecord)> = self
                    .runner
                    .sim()
                    .telemetry()
                    .qp_info
                    .iter()
                    .map(|(q, r)| (*q, r.clone()))
                    .collect();
                qps.sort_by_key(|(q, _)| *q);
                for (_, rec) in &qps {
                    if let Some(path) =
                        self.runner
                            .sim()
                            .route(rec.src_nic, rec.dst_nic, &rec.tuple)
                    {
                        // Interior links only: strip the NIC→ToR first hop
                        // and the ToR→NIC last hop.
                        if path.len() >= 3 {
                            candidates.extend(&path[1..path.len() - 1]);
                        }
                    }
                }
                candidates.sort();
                candidates.dedup();
                let Some(&l) =
                    candidates.get(self.rng.below(candidates.len().max(1) as u64) as usize)
                else {
                    return 0;
                };
                let blast = self.qps_crossing(&[l]);
                self.runner.sim_mut().fail_link_at(now, l);
                self.pending_restores.push(l);
                blast
            }
            InjectedFault::OpticalUplink { host_index, .. } => {
                let host = self.hosts[host_index % self.hosts.len()];
                let nic = self.topo.host(host).nics[0];
                // Kill the side the host's traffic is actually riding, so
                // the fault manifests regardless of how the QPs hashed.
                let up = self
                    .egress_uplink_in_use(nic)
                    .unwrap_or_else(|| self.topo.out_links(nic)[0]);
                let down = self
                    .topo
                    .link_between(self.topo.link(up).dst, nic)
                    .expect("duplex");
                let blast = self.qps_crossing(&[up, down]);
                self.runner.sim_mut().fail_link_at(now, up);
                self.runner.sim_mut().fail_link_at(now, down);
                blast
            }
            InjectedFault::HostFailure { host_index, .. } => {
                let host = self.hosts[host_index % self.hosts.len()];
                let nics = self.topo.host(host).nics.clone();
                let mut dead: Vec<LinkId> = Vec::new();
                for nic in nics {
                    for &up in self.topo.out_links(nic) {
                        dead.push(up);
                        if let Some(down) = self.topo.link_between(self.topo.link(up).dst, nic) {
                            dead.push(down);
                        }
                    }
                }
                let blast = self.qps_crossing(&dead);
                for l in dead {
                    self.runner.sim_mut().fail_link_at(now, l);
                }
                blast
            }
        }
    }

    /// Move iterations after the last checkpoint from useful to lost.
    fn rollback(&mut self, to: u32, current: u32) {
        for i in to..current {
            let s = std::mem::take(&mut self.iter_useful[i as usize]);
            self.useful_s -= s;
            self.lost_rollback_s += s;
        }
    }

    fn checkpoint_before(&self, it: u32) -> u32 {
        it - it % self.policy.checkpoint_interval
    }

    fn qp_record(&self, qp: QpId) -> QpRecord {
        self.runner.sim().telemetry().qp_info[&qp].clone()
    }

    fn nic_host(&self, nic: NodeId) -> Option<HostId> {
        match self.topo.node(nic).kind {
            NodeKind::Nic { host, .. } => Some(host),
            _ => None,
        }
    }

    /// A link is "host edge" when one endpoint is a NIC; returns that NIC.
    fn host_edge_nic(&self, l: LinkId) -> Option<NodeId> {
        let link = self.topo.link(l);
        for n in [link.src, link.dst] {
            if matches!(self.topo.node(n).kind, NodeKind::Nic { .. }) {
                return Some(n);
            }
        }
        None
    }

    /// A healthy NIC outside the suspect set, used as a probe target.
    fn witness_nic(&self) -> NodeId {
        let h = self
            .spares
            .first()
            .copied()
            .unwrap_or_else(|| *self.hosts.last().expect("job has hosts"));
        self.topo.host(h).nics[0]
    }

    /// Can `nic` reach `witness` on any of a handful of candidate ports?
    fn nic_reaches(&self, nic: NodeId, witness: NodeId) -> bool {
        if nic == witness {
            return true;
        }
        (0..8u16).any(|c| {
            self.runner
                .sim()
                .int_probe(
                    nic,
                    witness,
                    EPHEMERAL_BASE.wrapping_add(c.wrapping_mul(911)),
                )
                .reached
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astral_topo::{build_astral, AstralParams};

    fn topo() -> Topology {
        build_astral(&AstralParams::sim_small())
    }

    fn quick_spec() -> TrainingJobSpec {
        TrainingJobSpec {
            iters: 10,
            bytes: 4 << 20,
            comp_s: 0.2,
            ..TrainingJobSpec::default()
        }
    }

    #[test]
    fn healthy_run_has_full_goodput_minus_checkpoints() {
        let t = topo();
        let r = run_training(
            &t,
            &RecoveryPolicy::default(),
            &quick_spec(),
            &FaultScript::default(),
        );
        assert!(r.completed);
        assert_eq!(r.iters_done, 10);
        assert!(r.incidents.is_empty());
        assert_eq!(r.downtime_s, 0.0);
        assert_eq!(r.lost_rollback_s, 0.0);
        assert!(r.goodput() > 0.97, "goodput {}", r.goodput());
        // A healthy fabric never needs the full-solve (PFC/degraded) path.
        assert!(r.solver.incremental_solves > 0);
        assert_eq!(r.solver.full_solves, 0);
    }

    #[test]
    fn transient_link_is_rerouted_without_rollback() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::TransientLink {
                at_iter: 3,
                heal_after: SimDuration::from_millis(30),
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        assert_eq!(r.lost_rollback_s, 0.0);
        assert!(!r.incidents.is_empty());
        assert!(r
            .incidents
            .iter()
            .all(|i| i.action == MitigationAction::EcmpReroute));
        assert_eq!(r.injections.len(), 1);
        assert!(r.injections[0].blast_radius > 0);
        assert!(r.mttr_s().unwrap() < 1.0);
    }

    #[test]
    fn optical_fault_fails_over_to_surviving_tor() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::OpticalUplink {
                at_iter: 3,
                host_index: 2,
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        assert!(r
            .incidents
            .iter()
            .any(|i| i.class == FaultClass::OpticalDualTor
                && i.action == MitigationAction::TorFailover));
        // Failover keeps the host: nothing cordoned, no rollback.
        assert!(r.incidents.iter().all(|i| i.cordoned.is_empty()));
        assert_eq!(r.lost_rollback_s, 0.0);
    }

    #[test]
    fn degraded_floor_forces_replacement_instead_of_failover() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::OpticalUplink {
                at_iter: 3,
                host_index: 2,
            }],
        };
        let policy = RecoveryPolicy {
            degraded_bw_floor: 0.9, // half bandwidth unacceptable
            ..RecoveryPolicy::default()
        };
        let r = run_training(&t, &policy, &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        assert!(
            r.incidents
                .iter()
                .any(|i| i.action == MitigationAction::RestartFromCheckpoint
                    && !i.cordoned.is_empty())
        );
    }

    #[test]
    fn hard_host_fault_is_cordoned_and_restarted() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::HostFailure {
                at_iter: 6,
                host_index: 1,
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert!(r.completed, "incidents: {:?}", r.incidents);
        let hard: Vec<&Incident> = r
            .incidents
            .iter()
            .filter(|i| i.class == FaultClass::HardHost)
            .collect();
        assert_eq!(hard.len(), 1);
        assert_eq!(hard[0].cordoned, vec![HostId(1)]);
        assert_eq!(hard[0].action, MitigationAction::RestartFromCheckpoint);
        // Rolled back from iteration 6 to the checkpoint at 5.
        assert!(r.lost_rollback_s > 0.0);
    }

    #[test]
    fn disabled_policy_aborts_on_first_fault() {
        let t = topo();
        let script = FaultScript {
            faults: vec![InjectedFault::HostFailure {
                at_iter: 2,
                host_index: 1,
            }],
        };
        let r = run_training(&t, &RecoveryPolicy::disabled(), &quick_spec(), &script);
        assert!(!r.completed);
        assert_eq!(r.incidents.last().unwrap().action, MitigationAction::Abort);
    }

    #[test]
    fn runs_are_deterministic() {
        let t = topo();
        let script = FaultScript {
            faults: vec![
                InjectedFault::TransientLink {
                    at_iter: 2,
                    heal_after: SimDuration::from_millis(30),
                },
                InjectedFault::HostFailure {
                    at_iter: 6,
                    host_index: 3,
                },
            ],
        };
        let a = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        let b = run_training(&t, &RecoveryPolicy::default(), &quick_spec(), &script);
        assert_eq!(a.goodput(), b.goodput());
        assert_eq!(a.incidents.len(), b.incidents.len());
        assert_eq!(a.useful_s, b.useful_s);
        assert_eq!(a.downtime_s, b.downtime_s);
    }
}
