//! GPU placement policies (paper §2 "Flexibility").
//!
//! Astral's operators "allocate GPUs within the same block/Pod whenever
//! possible"; customers' expansion/contraction nevertheless forces
//! *fragmented* deployments across Pods — the situation Figure 2 quantifies.
//! [`PlacementPolicy`] captures the spectrum, and [`place_job`] turns a
//! policy into a rank → GPU mapping over a concrete topology.

use astral_topo::{GpuId, Topology};
use serde::{Deserialize, Serialize};

/// How a job's GPUs are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Fill blocks in order — the preferred dense allocation.
    BlockLocal,
    /// Round-robin hosts across the given number of Pods — the fragmented
    /// deployment of Figure 2.
    FragmentedAcrossPods {
        /// Pods to spread over.
        pods: u16,
    },
}

/// Place `gpus` GPUs on `topo` under `policy`, returning the rank → GPU map.
///
/// Whole hosts are allocated (all rails of a host belong to the job), and
/// ranks are assigned host-major so that TP groups stay inside NVLink
/// domains under the Megatron rank order.
pub fn place_job(topo: &Topology, gpus: u32, policy: PlacementPolicy) -> Vec<GpuId> {
    let rails = topo.rails() as u32;
    assert!(
        gpus.is_multiple_of(rails),
        "jobs allocate whole hosts: {gpus} GPUs not divisible by {rails} rails"
    );
    let hosts_needed = (gpus / rails) as usize;
    assert!(
        hosts_needed <= topo.hosts().len(),
        "job needs {hosts_needed} hosts, fabric has {}",
        topo.hosts().len()
    );

    let host_order: Vec<usize> = match policy {
        PlacementPolicy::BlockLocal => (0..hosts_needed).collect(),
        PlacementPolicy::FragmentedAcrossPods { pods } => {
            // Partition hosts by pod, then deal them out round-robin.
            let mut by_pod: Vec<Vec<usize>> = Vec::new();
            for (i, h) in topo.hosts().iter().enumerate() {
                let key = (h.dc.0 as usize) << 16 | h.pod as usize;
                if by_pod.len() <= key % pods as usize || by_pod.is_empty() {
                    // allocate buckets lazily below instead
                }
                let bucket = key % pods as usize;
                while by_pod.len() <= bucket {
                    by_pod.push(Vec::new());
                }
                by_pod[bucket].push(i);
            }
            let mut order = Vec::with_capacity(hosts_needed);
            let mut idx = vec![0usize; by_pod.len()];
            let mut bucket = 0usize;
            while order.len() < hosts_needed {
                let b = bucket % by_pod.len();
                if idx[b] < by_pod[b].len() {
                    order.push(by_pod[b][idx[b]]);
                    idx[b] += 1;
                }
                bucket += 1;
                assert!(
                    bucket < by_pod.len() * (topo.hosts().len() + 1),
                    "not enough hosts across {pods} pods"
                );
            }
            order
        }
    };

    let mut placement = Vec::with_capacity(gpus as usize);
    for &h in &host_order {
        for r in 0..rails {
            placement.push(GpuId(h as u32 * rails + r));
        }
    }
    placement
}

/// Number of distinct (dc, pod) pairs a placement touches.
pub fn pods_touched(topo: &Topology, placement: &[GpuId]) -> usize {
    let mut pods: Vec<(u32, u16)> = placement
        .iter()
        .map(|&g| {
            let h = topo.host(topo.gpu_host(g));
            (h.dc.0, h.pod)
        })
        .collect();
    pods.sort_unstable();
    pods.dedup();
    pods.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astral_topo::{build_astral, AstralParams};

    #[test]
    fn block_local_stays_in_one_pod() {
        let topo = build_astral(&AstralParams::sim_small());
        let p = place_job(&topo, 64, PlacementPolicy::BlockLocal);
        assert_eq!(p.len(), 64);
        assert_eq!(pods_touched(&topo, &p), 1);
        // Ranks are host-major: first 4 ranks share host 0.
        assert!(p[..4].iter().all(|g| topo.gpu_host(*g).0 == 0));
    }

    #[test]
    fn fragmented_spreads_across_pods() {
        let topo = build_astral(&AstralParams::sim_small());
        let p = place_job(&topo, 64, PlacementPolicy::FragmentedAcrossPods { pods: 2 });
        assert_eq!(pods_touched(&topo, &p), 2);
        // Placement is a set of distinct GPUs.
        let mut q = p.clone();
        q.sort();
        q.dedup();
        assert_eq!(q.len(), 64);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn partial_hosts_are_rejected() {
        let topo = build_astral(&AstralParams::sim_small());
        place_job(&topo, 63, PlacementPolicy::BlockLocal);
    }
}
