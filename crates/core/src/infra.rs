//! The Astral infrastructure facade: network + power + cooling + Seer +
//! monitoring, behind one orchestration type.

use crate::placement::{place_job, PlacementPolicy};
use astral_cooling::FacilityConfig;
use astral_model::{build_training_iteration, ModelConfig, ParallelismConfig};
use astral_monitor::{run_fault_scenario, Analyzer, Diagnosis, Fault, ScenarioConfig};
use astral_seer::{Calibration, GpuSpec, NetworkSpec, Seer, SeerConfig, Testbed};
use astral_topo::{build_astral, AstralParams, AstralScale, GpuId, Topology};

/// A deployed Astral datacenter: fabric, facility, and the software stack
/// (Seer + monitor) operating it.
pub struct AstralInfrastructure {
    params: AstralParams,
    topo: Topology,
    facility: FacilityConfig,
    gpu: GpuSpec,
}

/// Result of evaluating a training job on the infrastructure's testbed.
#[derive(Debug, Clone)]
pub struct JobEvaluation {
    /// Measured iteration time on the (simulated) fabric.
    pub iteration_s: f64,
    /// Tokens per second across the job.
    pub tokens_per_s: f64,
    /// Pods the placement touched.
    pub pods_touched: usize,
}

impl AstralInfrastructure {
    /// Deploy an Astral fabric with the default facility and H100-class
    /// GPUs.
    pub fn deploy(params: AstralParams) -> Self {
        let topo = build_astral(&params);
        AstralInfrastructure {
            params,
            topo,
            facility: FacilityConfig::astral(),
            gpu: GpuSpec::h100(),
        }
    }

    /// Use a different GPU model (e.g. the low-tier H20).
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// The fabric.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Builder parameters.
    pub fn params(&self) -> &AstralParams {
        &self.params
    }

    /// Figure-3 scale arithmetic for this deployment.
    pub fn scale(&self) -> AstralScale {
        self.params.scale()
    }

    /// Facility PUE under the current power/cooling configuration.
    pub fn pue(&self) -> f64 {
        self.facility.pue()
    }

    /// Place a job.
    pub fn place(&self, gpus: u32, policy: PlacementPolicy) -> Vec<GpuId> {
        place_job(&self.topo, gpus, policy)
    }

    /// A Seer calibrated against this infrastructure's testbed.
    pub fn calibrated_seer(&self, par: &ParallelismConfig, seed: u64) -> Seer {
        let testbed = Testbed::new(&self.topo, self.gpu.clone());
        let cal: Calibration = testbed.calibrate(par, seed);
        let mut net = NetworkSpec::astral();
        net.hb_domain = self.topo.hb_domain().gpus_per_domain;
        net.rails = self.topo.rails() as u32;
        Seer::new(SeerConfig {
            gpu: self.gpu.clone(),
            net,
            calibration: cal,
        })
    }

    /// Evaluate a training job end to end on the simulated fabric with the
    /// given placement.
    pub fn evaluate_training(
        &self,
        model: &ModelConfig,
        par: &ParallelismConfig,
        placement: Vec<GpuId>,
    ) -> JobEvaluation {
        assert_eq!(placement.len() as u32, par.world());
        let pods = crate::placement::pods_touched(&self.topo, &placement);
        let testbed = Testbed::new(&self.topo, self.gpu.clone()).with_placement(placement);
        let graph = build_training_iteration(model, par);
        let timeline = testbed.execute(&graph, par);
        let iteration_s = timeline.total.as_secs_f64();
        let tokens = par.global_batch() * model.seq_len;
        JobEvaluation {
            iteration_s,
            tokens_per_s: if iteration_s > 0.0 {
                tokens as f64 / iteration_s
            } else {
                0.0
            },
            pods_touched: pods,
        }
    }

    /// Inject a fault into a monitored job and run the hierarchical
    /// analyzer — the end-to-end §3 pipeline.
    pub fn diagnose_fault(&self, fault: Fault, cfg: &ScenarioConfig) -> Diagnosis {
        let outcome = run_fault_scenario(&self.topo, fault, cfg);
        Analyzer::new().diagnose(&outcome.snapshot, &outcome.prober)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infra() -> AstralInfrastructure {
        AstralInfrastructure::deploy(AstralParams::sim_small())
    }

    #[test]
    fn deploy_exposes_scale_and_pue() {
        let infra = infra();
        assert_eq!(infra.scale().gpus_total, 256);
        assert!((1.1..1.35).contains(&infra.pue()));
    }

    #[test]
    fn dense_placement_beats_fragmented() {
        let infra = infra();
        let mut m = ModelConfig::llama3_8b();
        m.layers = 4;
        m.hidden = 1024;
        m.ffn_hidden = 4096;
        m.vocab = 16000;
        m.seq_len = 1024;
        let mut par = ParallelismConfig::new(4, 2, 8);
        par.microbatches = 4;

        let dense = infra.evaluate_training(
            &m,
            &par,
            infra.place(par.world(), PlacementPolicy::BlockLocal),
        );
        let frag = infra.evaluate_training(
            &m,
            &par,
            infra.place(
                par.world(),
                PlacementPolicy::FragmentedAcrossPods { pods: 2 },
            ),
        );
        assert_eq!(dense.pods_touched, 1);
        assert_eq!(frag.pods_touched, 2);
        assert!(
            frag.iteration_s >= dense.iteration_s * 0.999,
            "fragmentation should not speed things up: {} vs {}",
            frag.iteration_s,
            dense.iteration_s
        );
    }

    #[test]
    fn fault_pipeline_produces_localized_diagnosis() {
        let infra = infra();
        let d = infra.diagnose_fault(
            Fault::GpuXid {
                host: astral_topo::HostId(2),
            },
            &ScenarioConfig::default(),
        );
        assert_eq!(
            d.culprit,
            astral_monitor::Culprit::Host(astral_topo::HostId(2))
        );
    }

    #[test]
    fn calibrated_seer_forecasts() {
        let infra = infra();
        let mut m = ModelConfig::llama3_8b();
        m.layers = 4;
        m.hidden = 1024;
        m.ffn_hidden = 4096;
        m.vocab = 16000;
        m.seq_len = 1024;
        let mut par = ParallelismConfig::new(4, 2, 4);
        par.microbatches = 4;
        let seer = infra.calibrated_seer(&par, 7);
        let f = seer.forecast_training(&m, &par);
        assert!(f.iteration_s > 0.0);
    }
}
