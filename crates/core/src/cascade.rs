//! Cross-substrate cascade engine: correlated power/cooling/optics fault
//! campaigns flowing through the training lifecycle (paper §2.2 + §3).
//!
//! PR-1's [`crate::recovery`] engine injects *network* faults — a link
//! dies, flows abort, recovery reroutes. Real incidents start one layer
//! down: a grid sag trips an HVDC rectifier, the battery floats the rack
//! row for its ride-through window, and only *then* does a power cap
//! throttle every GPU in the row into stragglers; a cooling pump degrades
//! and the row's inlet temperatures ramp until DVFS clamps engage; an
//! optics batch fails and several same-rail links go dark in one window.
//! None of these kill the job outright — they degrade it, and the right
//! response is *graceful degradation*, not cordon-everything.
//!
//! This module models those cascades as deterministic state machines
//! driven by the recovery engine's iteration clock:
//!
//! * **[`SubstrateFault::GridSag`]** — supply drops to `supply_frac` of
//!   nominal; the row's battery (a real [`astral_power::HvdcUnit`]) rides
//!   the deficit for its ride-through window, after which the rack power
//!   cap engages and compute slows by `supply_frac^-0.7`.
//! * **[`SubstrateFault::CoolingPumpFault`]** — row airflow drops to
//!   `flow_frac`; rack temperatures follow a first-order lag toward the
//!   degraded steady state of [`astral_cooling::RackRow`], throttling
//!   above [`THROTTLE_C`] and forcing a cordon at [`CRITICAL_C`].
//! * **[`SubstrateFault::OpticsBurst`]** — a correlated batch of optical
//!   modules dies: the in-use uplinks of several same-rail NICs fail in
//!   one window, exercising PR-1's errCQE → localize → failover path.
//!
//! Every cascade emits substrate telemetry into the monitoring
//! [`astral_monitor::Snapshot`], so the hierarchical analyzer attributes
//! the incident to its *originating* substrate (power/cooling/network),
//! not the straggler symptom. Graceful mitigations — flow reroute +
//! thermal power cap, power-cap ride-through, straggler-aware micro-batch
//! rebalancing, and Seer-forecast-gated proactive checkpoints — compete
//! against the PR-1 reactive ladder inside seeded [`FaultCampaign`]s.

use crate::recovery::{
    run_engine_with_substrate, FaultClass, FaultScript, InjectedFault, JobPlacement,
    RecoveryPolicy, RecoveryReport, TrainingJobSpec,
};
use astral_collectives::RunnerConfig;
use astral_cooling::{Airflow, RackRow};
use astral_monitor::{CauseClass, CorrelationPrior};
use astral_power::{HvdcUnit, RackPower};
use astral_seer::HazardForecaster;
use astral_sim::SimRng;
use astral_topo::{HostId, Router, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// Rack inlet temperature at which GPUs begin thermally throttling, °C.
pub const THROTTLE_C: f64 = 45.0;
/// Rack temperature at which the DCIM force-cordons the hottest host, °C.
pub const CRITICAL_C: f64 = 50.0;
/// Supply air temperature, °C.
pub const INLET_C: f64 = 22.0;
/// Nominal rack heat load, watts (one job host per rack).
pub const RACK_TDP_W: f64 = 40_000.0;
/// Nominal per-rack supply airflow, m³/s.
pub const RACK_FLOW_M3S: f64 = 2.4;
/// First-order lag of rack temperature toward its steady state, per
/// iteration (thermal mass of a rack vs an iteration's wall-clock).
pub const TEMP_LAG: f64 = 0.35;
/// Compute slowdown per °C above [`THROTTLE_C`].
pub const SLOWDOWN_PER_DEG: f64 = 0.08;
/// Compute-time exponent of a power cap: `time ∝ cap^-CAP_EXPONENT`
/// (sub-linear — DVFS trades disproportionately little speed for power).
pub const CAP_EXPONENT: f64 = 0.7;
/// Flow-reroute blend engaged by graceful degradation (see
/// [`RackRow::temperatures_rerouted`]).
pub const REROUTE_BOOST: f64 = 0.9;

/// One scripted substrate fault — the *origin* of a cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubstrateFault {
    /// Grid sag / rectifier trip: row supply drops to `supply_frac` of
    /// nominal for `duration_iters`. The battery rides the deficit first;
    /// the cap (and the stragglers) only land once it is spent.
    GridSag {
        /// Iteration at whose start the sag lands.
        at_iter: u32,
        /// Rack row (global pod-major block index) hit by the sag.
        row: usize,
        /// Surviving supply as a fraction of nominal, in (0, 1).
        supply_frac: f64,
        /// Iterations until the grid recovers (counted from onset).
        duration_iters: u32,
        /// Battery capacity per rack, Wh — deliberately small, scaled to
        /// the simulator's compressed iteration clock.
        battery_wh_per_rack: f64,
    },
    /// Pump/CDU degradation: row airflow drops to `flow_frac` of design
    /// and stays there until a forced cordon triggers the facilities
    /// repair (or graceful degradation holds the row below critical).
    CoolingPumpFault {
        /// Iteration at whose start the pump degrades.
        at_iter: u32,
        /// Rack row (global pod-major block index) losing airflow.
        row: usize,
        /// Surviving airflow as a fraction of design, in (0, 1).
        flow_frac: f64,
    },
    /// A correlated optics-batch failure: the in-use uplinks of `links`
    /// consecutive job hosts (same rail) die in one window.
    OpticsBurst {
        /// Iteration at whose start the burst lands.
        at_iter: u32,
        /// Same-rail links killed in the window.
        links: usize,
    },
}

impl SubstrateFault {
    /// Iteration at whose start the fault lands.
    pub fn at_iter(&self) -> u32 {
        match *self {
            SubstrateFault::GridSag { at_iter, .. }
            | SubstrateFault::CoolingPumpFault { at_iter, .. }
            | SubstrateFault::OpticsBurst { at_iter, .. } => at_iter,
        }
    }

    /// The cascade class this fault originates.
    pub fn class(&self) -> CascadeClass {
        match self {
            SubstrateFault::GridSag { .. } => CascadeClass::Power,
            SubstrateFault::CoolingPumpFault { .. } => CascadeClass::Cooling,
            SubstrateFault::OpticsBurst { .. } => CascadeClass::Optics,
        }
    }
}

/// Which substrate a cascade originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CascadeClass {
    /// Power-delivery substrate (grid / HVDC / battery).
    Power,
    /// Cooling substrate (pump / CDU / airflow).
    Cooling,
    /// Optical network substrate (module batch).
    Optics,
}

impl CascadeClass {
    /// Stable numeric code carried in `SubstrateOnset` trace records
    /// (`aux`) — part of the serialized trace format; append, never
    /// renumber. Matches `astral_monitor::Signal::of_record`'s decoding.
    pub fn code(self) -> u16 {
        match self {
            CascadeClass::Power => 0,
            CascadeClass::Cooling => 1,
            CascadeClass::Optics => 2,
        }
    }

    /// The analyzer cause a correct attribution names for this class.
    pub fn expected_cause(self) -> CauseClass {
        match self {
            CascadeClass::Power => CauseClass::PowerDelivery,
            CascadeClass::Cooling => CauseClass::Cooling,
            CascadeClass::Optics => CauseClass::NicOrLink,
        }
    }
}

impl std::fmt::Display for CascadeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CascadeClass::Power => "power",
            CascadeClass::Cooling => "cooling",
            CascadeClass::Optics => "optics",
        };
        write!(f, "{s}")
    }
}

/// A deterministic cascade schedule.
#[derive(Debug, Clone, Default)]
pub struct CascadeScript {
    /// Substrate faults, any order; each lands at its iteration.
    pub faults: Vec<SubstrateFault>,
    /// Network-layer faults (fail-stop *and* gray) riding the same
    /// campaign clock, handed to the recovery engine's injector — this is
    /// how a campaign mixes a flapping optic into a power-sag window.
    pub net_faults: Vec<InjectedFault>,
}

/// Per-iteration probabilities of each spontaneous substrate fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardRates {
    /// Grid sag probability per iteration.
    pub grid_sag: f64,
    /// Pump/CDU fault probability per iteration.
    pub pump: f64,
    /// Optics-batch burst probability per iteration.
    pub optics: f64,
}

impl HazardRates {
    /// No spontaneous faults — scripted cascades only.
    pub fn none() -> Self {
        HazardRates {
            grid_sag: 0.0,
            pump: 0.0,
            optics: 0.0,
        }
    }
}

/// A seeded fault campaign: scripted correlated faults plus per-substrate
/// hazard rates. Identical seeds materialize identical scripts, and
/// (through the engine's own determinism) byte-identical reports.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// Faults that land regardless of the hazard draw.
    pub scripted: CascadeScript,
    /// Spontaneous per-substrate hazard rates.
    pub hazards: HazardRates,
    /// Iterations the campaign draws hazards over (keep a tail margin so
    /// late faults still get diagnosed before the run ends).
    pub horizon_iters: u32,
    /// Campaign seed: drives the hazard draw and the fault shapes.
    pub seed: u64,
}

impl FaultCampaign {
    /// A scripted-only campaign.
    pub fn scripted(script: CascadeScript, seed: u64) -> Self {
        FaultCampaign {
            scripted: script,
            hazards: HazardRates::none(),
            horizon_iters: 0,
            seed,
        }
    }

    /// Materialize the campaign into a concrete [`CascadeScript`]:
    /// scripted faults first, then one hazard draw per substrate per
    /// iteration of the horizon. Deterministic in `seed`.
    pub fn materialize(&self) -> CascadeScript {
        let mut faults = self.scripted.faults.clone();
        let mut rng = SimRng::new(self.seed);
        // Leave the final iterations fault-free so a late cascade still
        // manifests and gets attributed before the run ends.
        let draw_until = self.horizon_iters.saturating_sub(8);
        for it in 0..draw_until {
            if rng.chance(self.hazards.grid_sag) {
                faults.push(SubstrateFault::GridSag {
                    at_iter: it,
                    row: rng.below(2) as usize,
                    supply_frac: 0.55 + 0.1 * rng.chance(0.5) as u8 as f64,
                    duration_iters: 8 + rng.below(5) as u32,
                    battery_wh_per_rack: 6.0 + 3.0 * rng.below(3) as f64,
                });
            }
            if rng.chance(self.hazards.pump) {
                faults.push(SubstrateFault::CoolingPumpFault {
                    at_iter: it,
                    row: rng.below(2) as usize,
                    flow_frac: 0.38 + 0.04 * rng.below(3) as f64,
                });
            }
            if rng.chance(self.hazards.optics) {
                faults.push(SubstrateFault::OpticsBurst {
                    at_iter: it,
                    links: 2 + rng.below(2) as usize,
                });
            }
        }
        faults.sort_by_key(|f| f.at_iter());
        CascadeScript {
            faults,
            net_faults: self.scripted.net_faults.clone(),
        }
    }
}

/// Ground truth vs diagnosis for one injected cascade.
#[derive(Debug, Clone)]
pub struct CascadeAttribution {
    /// The substrate the cascade actually originated in.
    pub class: CascadeClass,
    /// Iteration the fault landed.
    pub onset_iter: u32,
    /// What the analyzer (or the abort-path localization) blamed, once it
    /// looked; `None` means the run ended before a diagnosis.
    pub diagnosed: Option<CauseClass>,
    /// Iteration of the diagnosis.
    pub diagnosed_iter: Option<u32>,
    /// Job hosts inside the cascade's blast radius at onset.
    pub blast_hosts: usize,
}

impl CascadeAttribution {
    /// Did the diagnosis name the originating substrate?
    pub fn correct(&self) -> bool {
        self.diagnosed == Some(self.class.expected_cause())
    }
}

/// Outcome of one cascade run: the recovery report plus per-cascade
/// attribution ground truth.
#[derive(Debug, Clone)]
pub struct CascadeReport {
    /// The engine's goodput/MTTR/incident accounting.
    pub recovery: RecoveryReport,
    /// One entry per injected cascade, in onset order.
    pub attributions: Vec<CascadeAttribution>,
}

impl CascadeReport {
    /// Fraction of injected cascades attributed to their originating
    /// substrate; `None` when nothing was injected.
    pub fn attribution_accuracy(&self) -> Option<f64> {
        if self.attributions.is_empty() {
            return None;
        }
        let correct = self.attributions.iter().filter(|a| a.correct()).count();
        Some(correct as f64 / self.attributions.len() as f64)
    }

    /// A deterministic fingerprint over every semantic field — float bits,
    /// incident sequence, attributions — but *excluding* solver counters,
    /// which legitimately differ between incremental and full-rebuild
    /// solver modes. Byte-identical fingerprints ⇒ identical runs.
    pub fn fingerprint(&self) -> String {
        let mut s = self.recovery.fingerprint();
        for a in &self.attributions {
            s.push_str(&format!(
                "|casc:{:?}@{}→{:?}@{:?}·b{}",
                a.class, a.onset_iter, a.diagnosed, a.diagnosed_iter, a.blast_hosts
            ));
        }
        s
    }
}

/// Run one training job with `script`'s cascades flowing through the
/// recovery lifecycle. Panics on an invalid policy (see
/// [`RecoveryPolicy::validate`]); use [`try_run_cascade`] to handle the
/// error instead.
pub fn run_cascade(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &CascadeScript,
) -> CascadeReport {
    match try_run_cascade(topo, policy, spec, script, RunnerConfig::default()) {
        Ok(r) => r,
        Err(e) => panic!("run_cascade: invalid policy: {e}"),
    }
}

/// [`run_cascade`] with an explicit runner configuration (e.g. to flip
/// `NetConfig::incremental_solver` for determinism cross-checks), and a
/// `Result` instead of a panic on invalid policies.
pub fn try_run_cascade(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &CascadeScript,
    runner_cfg: RunnerConfig,
) -> Result<CascadeReport, crate::recovery::PolicyError> {
    try_run_cascade_placed(
        topo,
        policy,
        spec,
        script,
        runner_cfg,
        &JobPlacement::prefix(spec.hosts, spec.spares),
        None,
    )
}

/// [`try_run_cascade`] on an explicit [`JobPlacement`] — the multi-tenant
/// entry point: the tenant's hosts and its spare grant live anywhere in
/// the fabric. `router` optionally shares a warmed ECMP router across
/// independent runs on the same topology (byte-identical results, setup
/// paid once).
pub fn try_run_cascade_placed(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &CascadeScript,
    runner_cfg: RunnerConfig,
    placement: &JobPlacement,
    router: Option<Arc<Router>>,
) -> Result<CascadeReport, crate::recovery::PolicyError> {
    try_run_cascade_placed_prior(
        topo,
        policy,
        spec,
        script,
        runner_cfg,
        placement,
        router,
        CorrelationPrior::default(),
    )
}

/// [`try_run_cascade_placed`] with a mined [`CorrelationPrior`] ordering
/// the analyzer's substrate drill-down. The default (inert) prior is
/// byte-identical to the baseline entry point; an active prior consults
/// substrate telemetry before cumulative errCQE evidence, fixing the
/// misattribution of cooling/power cascades that land after any comm
/// fault in the same run.
#[allow(clippy::too_many_arguments)]
pub fn try_run_cascade_placed_prior(
    topo: &Topology,
    policy: &RecoveryPolicy,
    spec: &TrainingJobSpec,
    script: &CascadeScript,
    runner_cfg: RunnerConfig,
    placement: &JobPlacement,
    router: Option<Arc<Router>>,
    prior: CorrelationPrior,
) -> Result<CascadeReport, crate::recovery::PolicyError> {
    policy.validate()?;
    let substrate = SubstrateState::new(topo, spec.seed, script.clone());
    let net_script = FaultScript {
        faults: script.net_faults.clone(),
    };
    let (recovery, substrate) = run_engine_with_substrate(
        topo,
        policy,
        spec,
        net_script,
        runner_cfg,
        substrate,
        placement.clone(),
        router,
        prior,
    );
    Ok(CascadeReport {
        recovery,
        attributions: substrate.attributions,
    })
}

/// One entry of a campaign battery: an independent (policy, job spec,
/// campaign) triple.
pub type CampaignRun = (RecoveryPolicy, TrainingJobSpec, FaultCampaign);

/// Run a battery of independent cascade campaigns on the
/// `ASTRAL_THREADS`-sized pool. Reports come back in submission order and
/// every run is an isolated simulation, so the output — fingerprints
/// included — is byte-identical to a serial loop at any thread count.
/// Panics on an invalid policy.
pub fn run_campaign_battery(
    topo: &Topology,
    runs: &[CampaignRun],
    runner_cfg: RunnerConfig,
) -> Vec<CascadeReport> {
    match try_run_campaign_battery_with(&astral_exec::Pool::from_env(), topo, runs, runner_cfg) {
        Ok(r) => r,
        Err(e) => panic!("run_campaign_battery: invalid policy: {e}"),
    }
}

/// [`run_campaign_battery`] on an explicit pool, surfacing policy errors.
/// Policies are validated up front (serially, in submission order) so the
/// first invalid one is reported deterministically regardless of width.
pub fn try_run_campaign_battery_with(
    pool: &astral_exec::Pool,
    topo: &Topology,
    runs: &[CampaignRun],
    runner_cfg: RunnerConfig,
) -> Result<Vec<CascadeReport>, crate::recovery::PolicyError> {
    try_run_campaign_battery_prior_with(pool, topo, runs, runner_cfg, CorrelationPrior::default())
}

/// [`try_run_campaign_battery_with`] with one mined [`CorrelationPrior`]
/// shared by every run — the with/without-prior comparison harness of the
/// `fig_trace_correlation` bench. The prior is plain `Copy` data, so the
/// parallel fan-out stays byte-identical to a serial loop at any width.
pub fn try_run_campaign_battery_prior_with(
    pool: &astral_exec::Pool,
    topo: &Topology,
    runs: &[CampaignRun],
    runner_cfg: RunnerConfig,
    prior: CorrelationPrior,
) -> Result<Vec<CascadeReport>, crate::recovery::PolicyError> {
    for (policy, _, _) in runs {
        policy.validate()?;
    }
    // Shared-topology fast path: one warmed ECMP router serves every run
    // (see `try_run_training_battery_with` for the soundness argument).
    let router = Arc::new(Router::new());
    Ok(pool.map(runs, |(policy, spec, campaign)| {
        let script = campaign.materialize();
        try_run_cascade_placed_prior(
            topo,
            policy,
            spec,
            &script,
            runner_cfg,
            &JobPlacement::prefix(spec.hosts, spec.spares),
            Some(router.clone()),
            prior,
        )
        .expect("battery policies validated up front")
    }))
}

/// The physical rack rows of a fabric: one `(pod, block)` host group per
/// row, pod-major, each behind one HVDC unit and one CDU loop. This is the
/// failure-domain unit every substrate cascade blasts — fleet placement
/// policies spread tenants across these rows to bound the blast radius.
pub fn rack_rows(topo: &Topology) -> Vec<Vec<HostId>> {
    let mut keys: Vec<(u16, u16)> = topo.hosts().iter().map(|h| (h.pod, h.block)).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut rows: Vec<Vec<HostId>> = keys
        .iter()
        .map(|&(pod, block)| {
            topo.hosts()
                .iter()
                .filter(|h| (h.pod, h.block) == (pod, block))
                .map(|h| h.id)
                .collect()
        })
        .collect();
    rows.sort_by_key(|r| r[0]);
    rows
}

// ---------------------------------------------------------------------------
// The substrate state machines, driven by the recovery engine's clock.
// ---------------------------------------------------------------------------

/// What one iteration tick asks of the engine.
#[derive(Debug, Default)]
pub(crate) struct SubstrateTick {
    /// Hosts whose in-use uplink must die this iteration (optics burst).
    pub kill_uplinks: Vec<HostId>,
    /// Hosts past [`CRITICAL_C`] the DCIM force-cordons (at most one per
    /// tick — the hottest; draining it triggers the facilities repair).
    pub forced_cordon: Vec<HostId>,
}

/// Substrate telemetry of one host for the monitoring snapshot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HostSubstrate {
    pub inlet_temp_c: f64,
    pub power_cap_frac: f64,
    pub thermal_throttle: bool,
}

impl HostSubstrate {
    fn healthy() -> Self {
        HostSubstrate {
            inlet_temp_c: INLET_C,
            power_cap_frac: 1.0,
            thermal_throttle: false,
        }
    }
}

struct SagState {
    supply_frac: f64,
    ride_through_s: f64,
    elapsed_s: f64,
    remaining_iters: u32,
    /// Attribution index, created only once the cap engages — a sag the
    /// battery rides out entirely never manifests, so there is nothing
    /// for the analyzer to attribute.
    attr: Option<usize>,
}

impl SagState {
    fn cap_active(&self) -> bool {
        self.elapsed_s > self.ride_through_s
    }
}

struct RowState {
    hosts: Vec<HostId>,
    temps: Vec<f64>,
    flow_frac: f64,
    pump_active: bool,
    rerouted: bool,
    thermal_cap: f64,
    cooling_attr: Option<usize>,
    sag: Option<SagState>,
}

impl RowState {
    fn new(hosts: Vec<HostId>) -> Self {
        let n = hosts.len();
        RowState {
            hosts,
            temps: vec![INLET_C; n],
            flow_frac: 1.0,
            pump_active: false,
            rerouted: false,
            thermal_cap: 1.0,
            cooling_attr: None,
            sag: None,
        }
    }

    /// Power cap currently applied to the row's racks (min of the sag cap
    /// and the graceful thermal cap).
    fn power_cap(&self) -> f64 {
        let sag_cap = match &self.sag {
            Some(s) if s.cap_active() => s.supply_frac,
            _ => 1.0,
        };
        sag_cap.min(self.thermal_cap)
    }

    /// Steady-state temperatures the row is lagging toward right now.
    fn target_temps(&self) -> Vec<f64> {
        let cap = self.power_cap();
        let row = RackRow {
            heat_w: vec![RACK_TDP_W * cap; self.hosts.len()],
            inlet_c: INLET_C,
            total_flow_m3s: RACK_FLOW_M3S * self.hosts.len() as f64 * self.flow_frac,
        };
        if self.rerouted {
            row.temperatures_rerouted(Airflow::SideIntake, REROUTE_BOOST)
                .expect("boost is a compile-time constant in [0,1]")
        } else {
            row.temperatures(Airflow::SideIntake)
        }
    }

    fn advance_temps(&mut self) {
        let targets = self.target_temps();
        for (t, target) in self.temps.iter_mut().zip(targets) {
            *t += (target - *t) * TEMP_LAG;
        }
    }

    /// The facilities repair that accompanies a forced cordon: airflow
    /// restored, graceful levers released, cascade closed.
    fn repair_pump(&mut self) {
        self.pump_active = false;
        self.flow_frac = 1.0;
        self.rerouted = false;
        self.thermal_cap = 1.0;
    }

    fn multiplier(&self, idx: usize) -> f64 {
        let mut m = 1.0;
        let t = self.temps[idx];
        if t > THROTTLE_C {
            m *= 1.0 + SLOWDOWN_PER_DEG * (t - THROTTLE_C);
        }
        let cap = self.power_cap();
        if cap < 1.0 {
            m *= cap.powf(-CAP_EXPONENT);
        }
        m
    }
}

/// The cascade driver the recovery engine consults once per iteration.
pub(crate) struct SubstrateState {
    rows: Vec<RowState>,
    host_row: HashMap<HostId, (usize, usize)>,
    script: Vec<SubstrateFault>,
    injected: Vec<bool>,
    rng: SimRng,
    rebalance: bool,
    temp_hazard: HazardForecaster,
    pub(crate) attributions: Vec<CascadeAttribution>,
}

impl SubstrateState {
    pub(crate) fn new(topo: &Topology, seed: u64, script: CascadeScript) -> Self {
        // Rack row = one (pod, block) group, pod-major, matching the
        // physical deployment of a row of racks behind one HVDC unit and
        // one CDU loop (see [`rack_rows`]).
        let rows: Vec<RowState> = rack_rows(topo).into_iter().map(RowState::new).collect();
        let mut host_row = HashMap::new();
        for (ri, row) in rows.iter().enumerate() {
            for (hi, &h) in row.hosts.iter().enumerate() {
                host_row.insert(h, (ri, hi));
            }
        }
        let injected = vec![false; script.faults.len()];
        SubstrateState {
            rows,
            host_row,
            script: script.faults,
            injected,
            rng: SimRng::new(seed ^ 0x5ca5_cade),
            rebalance: false,
            temp_hazard: HazardForecaster::rising(CRITICAL_C, 6),
            attributions: Vec::new(),
        }
    }

    /// Advance every cascade by one iteration: inject due faults, tick
    /// sag/thermal clocks, and report what the engine must do.
    pub(crate) fn begin_iter(
        &mut self,
        it: u32,
        last_iter_s: f64,
        job_hosts: &[HostId],
    ) -> SubstrateTick {
        let mut tick = SubstrateTick::default();
        for i in 0..self.script.len() {
            if self.injected[i] || self.script[i].at_iter() != it {
                continue;
            }
            self.injected[i] = true;
            match self.script[i] {
                SubstrateFault::GridSag {
                    row,
                    supply_frac,
                    duration_iters,
                    battery_wh_per_rack,
                    ..
                } => {
                    let ri = row % self.rows.len();
                    let n = self.rows[ri].hosts.len();
                    let racks: Vec<RackPower> = (0..n)
                        .map(|_| RackPower::try_new(RACK_TDP_W).expect("finite TDP"))
                        .collect();
                    let unit = HvdcUnit::try_for_row(racks, battery_wh_per_rack * n as f64)
                        .expect("cascade rack parameters are finite");
                    let deficit_w = (1.0 - supply_frac).max(0.0) * RACK_TDP_W * n as f64;
                    self.rows[ri].sag = Some(SagState {
                        supply_frac,
                        ride_through_s: unit.ride_through_s(deficit_w),
                        elapsed_s: 0.0,
                        remaining_iters: duration_iters,
                        attr: None,
                    });
                }
                SubstrateFault::CoolingPumpFault { row, flow_frac, .. } => {
                    let ri = row % self.rows.len();
                    let attr = self.push_attribution(
                        CascadeClass::Cooling,
                        it,
                        self.blast_of(ri, job_hosts),
                    );
                    let r = &mut self.rows[ri];
                    r.pump_active = true;
                    r.flow_frac = flow_frac;
                    r.cooling_attr = Some(attr);
                }
                SubstrateFault::OpticsBurst { links, .. } => {
                    let links = links.min(job_hosts.len()).max(1);
                    let start = self.rng.below(job_hosts.len() as u64) as usize;
                    let victims: Vec<HostId> = (0..links)
                        .map(|k| job_hosts[(start + k) % job_hosts.len()])
                        .collect();
                    self.push_attribution(CascadeClass::Optics, it, victims.len());
                    tick.kill_uplinks.extend(victims);
                }
            }
        }

        // Tick the sag clocks. The power cascade only *manifests* (and
        // becomes attributable) once the battery is spent and the cap
        // engages; a sag ridden out entirely leaves no trace.
        for ri in 0..self.rows.len() {
            let mut expired = false;
            let mut cap_onset = false;
            if let Some(sag) = &mut self.rows[ri].sag {
                sag.elapsed_s += last_iter_s;
                sag.remaining_iters = sag.remaining_iters.saturating_sub(1);
                expired = sag.remaining_iters == 0;
                cap_onset = !expired && sag.cap_active() && sag.attr.is_none();
            }
            if cap_onset {
                let blast = self.blast_of(ri, job_hosts);
                let attr = self.push_attribution(CascadeClass::Power, it, blast);
                if let Some(sag) = &mut self.rows[ri].sag {
                    sag.attr = Some(attr);
                }
            }
            if expired {
                self.rows[ri].sag = None;
            }
        }

        // Tick the thermal lags, then look for criticals.
        let mut hottest: Option<(HostId, f64)> = None;
        let mut max_temp = f64::NEG_INFINITY;
        for row in &mut self.rows {
            if !row.pump_active && row.temps.iter().all(|&t| t - INLET_C < 0.01) {
                continue;
            }
            row.advance_temps();
            for (hi, &h) in row.hosts.iter().enumerate() {
                let t = row.temps[hi];
                max_temp = max_temp.max(t);
                if t >= CRITICAL_C && job_hosts.contains(&h) {
                    match hottest {
                        Some((_, best)) if best >= t => {}
                        _ => hottest = Some((h, t)),
                    }
                }
            }
        }
        if max_temp.is_finite() {
            self.temp_hazard.observe(it as f64, max_temp);
        }
        if let Some((victim, _)) = hottest {
            tick.forced_cordon.push(victim);
            let (ri, _) = self.host_row[&victim];
            self.rows[ri].repair_pump();
            self.temp_hazard.reset();
        }
        tick
    }

    fn blast_of(&self, row: usize, job_hosts: &[HostId]) -> usize {
        self.rows[row]
            .hosts
            .iter()
            .filter(|h| job_hosts.contains(h))
            .count()
    }

    fn push_attribution(&mut self, class: CascadeClass, onset: u32, blast: usize) -> usize {
        self.attributions.push(CascadeAttribution {
            class,
            onset_iter: onset,
            diagnosed: None,
            diagnosed_iter: None,
            blast_hosts: blast,
        });
        self.attributions.len() - 1
    }

    /// Is the Seer hazard forecast inside the proactive-checkpoint lead
    /// window? True when either the thermal trend crosses [`CRITICAL_C`]
    /// within `lead` iterations, or a riding-through battery is within
    /// `lead` iterations of exhaustion.
    pub(crate) fn hazard_imminent(&self, lead_iters: u32, last_iter_s: f64) -> bool {
        if self.temp_hazard.imminent(lead_iters as f64) {
            return true;
        }
        let step = last_iter_s.max(1e-9);
        self.rows.iter().any(|r| {
            r.sag.as_ref().is_some_and(|s| {
                !s.cap_active() && (s.ride_through_s - s.elapsed_s) / step <= lead_iters as f64
            })
        })
    }

    /// Substrate telemetry of one host, for the monitoring snapshot.
    pub(crate) fn telemetry(&self, host: HostId) -> HostSubstrate {
        let Some(&(ri, hi)) = self.host_row.get(&host) else {
            return HostSubstrate::healthy();
        };
        let row = &self.rows[ri];
        let t = row.temps[hi];
        HostSubstrate {
            inlet_temp_c: t,
            power_cap_frac: row.power_cap(),
            thermal_throttle: t > THROTTLE_C,
        }
    }

    /// Compute-time multiplier of one host (1.0 = nominal).
    pub(crate) fn host_multiplier(&self, host: HostId) -> f64 {
        match self.host_row.get(&host) {
            Some(&(ri, hi)) => self.rows[ri].multiplier(hi),
            None => 1.0,
        }
    }

    /// Job-level compute multiplier. Without micro-batch rebalancing the
    /// slowest straggler paces every rank (synchronous data parallelism:
    /// the max); with it, work shifts toward the healthy hosts and the
    /// job runs at the harmonic mean.
    pub(crate) fn aggregate_multiplier(&self, job_hosts: &[HostId]) -> f64 {
        if job_hosts.is_empty() {
            return 1.0;
        }
        let ms = job_hosts.iter().map(|&h| self.host_multiplier(h));
        if self.rebalance {
            let inv: f64 = ms.map(|m| 1.0 / m).sum();
            job_hosts.len() as f64 / inv
        } else {
            ms.fold(1.0, f64::max)
        }
    }

    /// Is there an active, stressed cascade the engine has not yet
    /// diagnosed? (The physical-layer DCIM alarm.)
    pub(crate) fn stress_pending(&self) -> bool {
        self.rows.iter().any(|r| {
            let cooling_pending = r.pump_active
                && r.cooling_attr
                    .is_some_and(|a| self.attributions[a].diagnosed.is_none())
                && r.temps.iter().any(|&t| t > INLET_C + 10.0);
            let sag_pending = r.sag.as_ref().is_some_and(|s| {
                s.cap_active()
                    && s.attr
                        .is_some_and(|a| self.attributions[a].diagnosed.is_none())
            });
            cooling_pending || sag_pending
        })
    }

    /// Record the analyzer's verdict against every pending stressed
    /// cascade, and (under graceful degradation) engage the mitigation
    /// ladder for the *diagnosed* substrate. Returns true when any
    /// graceful lever newly engaged.
    pub(crate) fn attend(&mut self, it: u32, cause: CauseClass, graceful: bool) -> bool {
        let mut resolve: Vec<usize> = Vec::new();
        for r in &self.rows {
            if let Some(a) = r.cooling_attr {
                if r.pump_active
                    && self.attributions[a].diagnosed.is_none()
                    && r.temps.iter().any(|&t| t > INLET_C + 10.0)
                {
                    resolve.push(a);
                }
            }
            if let Some(s) = &r.sag {
                if let Some(a) = s.attr {
                    if s.cap_active() && self.attributions[a].diagnosed.is_none() {
                        resolve.push(a);
                    }
                }
            }
        }
        for a in resolve {
            self.attributions[a].diagnosed = Some(cause);
            self.attributions[a].diagnosed_iter = Some(it);
        }
        if !graceful {
            return false;
        }
        let mut engaged = false;
        match cause {
            CauseClass::Cooling => {
                for r in &mut self.rows {
                    if r.pump_active && !r.rerouted {
                        // Flow reroute equalizes the spread; the thermal
                        // power cap sizes the heat to what the surviving
                        // flow can remove at the throttle point.
                        r.rerouted = true;
                        let nominal_dt = RACK_TDP_W / (1.2 * 1005.0 * RACK_FLOW_M3S * r.flow_frac);
                        let allowed_dt = THROTTLE_C - INLET_C;
                        r.thermal_cap = (allowed_dt / nominal_dt).clamp(0.3, 1.0);
                        engaged = true;
                    }
                }
            }
            CauseClass::PowerDelivery => {
                // Ride the cap: nothing to restore at the rack, the lever
                // is load-shaping (the rebalance below).
                engaged = self
                    .rows
                    .iter()
                    .any(|r| r.sag.as_ref().is_some_and(SagState::cap_active));
            }
            _ => {}
        }
        if engaged && !self.rebalance {
            self.rebalance = true;
        }
        engaged
    }

    /// Whether graceful micro-batch rebalancing is currently engaged.
    #[cfg(test)]
    fn rebalanced(&self) -> bool {
        self.rebalance
    }

    /// Resolve a pending optics attribution from the abort-path incident
    /// the recovery engine just handled.
    pub(crate) fn note_incident(&mut self, it: u32, class: FaultClass) {
        let diagnosed = match class {
            FaultClass::TransientLink
            | FaultClass::OpticalDualTor
            | FaultClass::FlappingLink
            | FaultClass::DegradingOptic => CauseClass::NicOrLink,
            FaultClass::HardHost => CauseClass::GpuHardware,
            // Fail-slow symptoms and gray host quarantines are degraded
            // states, not optics attributions.
            FaultClass::FailSlow | FaultClass::GrayStraggler => return,
        };
        if let Some(a) = self
            .attributions
            .iter_mut()
            .find(|a| a.class == CascadeClass::Optics && a.diagnosed.is_none())
        {
            a.diagnosed = Some(diagnosed);
            a.diagnosed_iter = Some(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astral_topo::{build_astral, AstralParams};

    fn state(script: CascadeScript) -> SubstrateState {
        let topo = build_astral(&AstralParams::sim_small());
        SubstrateState::new(&topo, 7, script)
    }

    fn job_hosts(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn rows_partition_the_fleet_pod_major() {
        let s = state(CascadeScript::default());
        // sim_small: 2 pods × 4 blocks × 8 hosts.
        assert_eq!(s.rows.len(), 8);
        assert!(s.rows.iter().all(|r| r.hosts.len() == 8));
        assert_eq!(s.rows[0].hosts[0], HostId(0));
        assert_eq!(s.host_row[&HostId(9)], (1, 1));
    }

    #[test]
    fn pump_fault_ramps_temps_until_forced_cordon() {
        let script = CascadeScript {
            faults: vec![SubstrateFault::CoolingPumpFault {
                at_iter: 0,
                row: 0,
                flow_frac: 0.4,
            }],
            net_faults: Vec::new(),
        };
        let mut s = state(script);
        let hosts = job_hosts(16);
        let mut cordoned = None;
        for it in 0..20 {
            let tick = s.begin_iter(it, 0.8, &hosts);
            if let Some(&h) = tick.forced_cordon.first() {
                cordoned = Some((it, h));
                break;
            }
        }
        let (at, host) = cordoned.expect("an unmitigated pump fault must escalate");
        assert!(at >= 2, "the thermal lag gives detection a window, at={at}");
        assert!(s.host_row[&host].0 == 0, "cordon lands inside the row");
        // The cordon triggers the facilities repair.
        assert!(!s.rows[0].pump_active);
        assert!((s.rows[0].flow_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn graceful_cooling_mitigation_holds_the_row_below_critical() {
        let script = CascadeScript {
            faults: vec![SubstrateFault::CoolingPumpFault {
                at_iter: 0,
                row: 0,
                flow_frac: 0.4,
            }],
            net_faults: Vec::new(),
        };
        let mut s = state(script);
        let hosts = job_hosts(16);
        for it in 0..30 {
            let tick = s.begin_iter(it, 0.8, &hosts);
            assert!(
                tick.forced_cordon.is_empty(),
                "graceful row crossed critical at iter {it}"
            );
            if it == 2 {
                assert!(s.stress_pending(), "DCIM alarm must fire during the ramp");
                assert!(s.attend(it, CauseClass::Cooling, true));
                assert!(s.rebalanced());
            }
        }
        let peak = s.rows[0].temps.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak < CRITICAL_C, "peak {peak:.1} °C");
        // The thermal cap slows the row, the harmonic rebalance softens it.
        let worst = s.aggregate_multiplier(&hosts);
        assert!(worst > 1.0 && worst < 1.4, "rebalanced multiplier {worst}");
    }

    #[test]
    fn grid_sag_caps_only_after_the_ride_through_window() {
        let script = CascadeScript {
            faults: vec![SubstrateFault::GridSag {
                at_iter: 0,
                row: 0,
                supply_frac: 0.6,
                duration_iters: 10,
                battery_wh_per_rack: 60.0,
            }],
            net_faults: Vec::new(),
        };
        let mut s = state(script);
        let hosts = job_hosts(16);
        s.begin_iter(0, 0.8, &hosts);
        // Battery still floating: no cap, full speed.
        assert!((s.telemetry(HostId(0)).power_cap_frac - 1.0).abs() < 1e-12);
        assert!((s.aggregate_multiplier(&hosts) - 1.0).abs() < 1e-12);
        // 60 Wh × 8 racks, half usable, 128 kW deficit → ~6.7 s.
        let mut capped_at = None;
        for it in 1..12 {
            s.begin_iter(it, 0.8, &hosts);
            if s.telemetry(HostId(0)).power_cap_frac < 1.0 {
                capped_at = Some(it);
                break;
            }
        }
        let at = capped_at.expect("the battery must run out");
        assert!(at >= 2, "ride-through must cover some iterations, at={at}");
        assert!(s.stress_pending());
        let m = s.aggregate_multiplier(&hosts);
        assert!(
            (m - 0.6_f64.powf(-CAP_EXPONENT)).abs() < 1e-9,
            "max multiplier {m}"
        );
        // The sag expires and the cap lifts.
        for it in 12..30 {
            s.begin_iter(it, 0.8, &hosts);
        }
        assert!((s.telemetry(HostId(0)).power_cap_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optics_burst_kills_same_window_uplinks_and_attributes_on_incident() {
        let script = CascadeScript {
            faults: vec![SubstrateFault::OpticsBurst {
                at_iter: 3,
                links: 3,
            }],
            net_faults: Vec::new(),
        };
        let mut s = state(script);
        let hosts = job_hosts(16);
        for it in 0..3 {
            assert!(s.begin_iter(it, 0.8, &hosts).kill_uplinks.is_empty());
        }
        let tick = s.begin_iter(3, 0.8, &hosts);
        assert_eq!(tick.kill_uplinks.len(), 3);
        assert_eq!(s.attributions.len(), 1);
        assert!(s.attributions[0].diagnosed.is_none());
        s.note_incident(3, FaultClass::OpticalDualTor);
        assert!(s.attributions[0].correct());
    }

    #[test]
    fn campaign_materialization_is_deterministic_in_the_seed() {
        let c = FaultCampaign {
            scripted: CascadeScript::default(),
            hazards: HazardRates {
                grid_sag: 0.05,
                pump: 0.05,
                optics: 0.05,
            },
            horizon_iters: 40,
            seed: 99,
        };
        let a = c.materialize();
        let b = c.materialize();
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_empty(), "5% × 3 × 32 draws should land faults");
        let different = FaultCampaign { seed: 100, ..c }.materialize();
        assert_ne!(a.faults, different.faults);
    }

    #[test]
    fn hazard_forecast_is_imminent_before_the_cordon() {
        let script = CascadeScript {
            faults: vec![SubstrateFault::CoolingPumpFault {
                at_iter: 0,
                row: 0,
                flow_frac: 0.4,
            }],
            net_faults: Vec::new(),
        };
        let mut s = state(script);
        let hosts = job_hosts(16);
        let mut warned_at = None;
        for it in 0..20 {
            let tick = s.begin_iter(it, 0.8, &hosts);
            if !tick.forced_cordon.is_empty() {
                let warned = warned_at.expect("forecast must precede the cordon");
                assert!(warned < it);
                return;
            }
            if warned_at.is_none() && s.hazard_imminent(3, 0.8) {
                warned_at = Some(it);
            }
        }
        panic!("cordon never happened");
    }
}
