//! Property-based tests for model configs, parallelism, and graphs.

use astral_model::{build_training_iteration, chakra, ModelConfig, ParallelismConfig};
use proptest::prelude::*;

fn small_model(layers: u32) -> ModelConfig {
    let mut m = ModelConfig::llama3_8b();
    m.layers = layers;
    m.hidden = 512;
    m.heads = 8;
    m.kv_heads = 2;
    m.ffn_hidden = 2048;
    m.vocab = 8192;
    m.seq_len = 256;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rank ↔ coordinate mapping is a bijection for arbitrary layouts.
    #[test]
    fn rank_mapping_bijective(tp in 1u32..5, pp in 1u32..5, dp in 1u32..5) {
        let c = ParallelismConfig::new(tp, pp, dp);
        let mut seen = std::collections::HashSet::new();
        for r in 0..c.world() {
            let (p, d, t) = c.coords_of(r);
            prop_assert!(p < pp && d < dp && t < tp);
            prop_assert_eq!(c.rank_of(p, d, t), r);
            prop_assert!(seen.insert(r));
        }
    }

    /// Every generated training graph is a valid DAG whose comm ops carry
    /// positive byte counts and whose send/recv counts match.
    #[test]
    fn training_graphs_are_valid(
        pp in 1u32..4,
        tp in 1u32..4,
        dp in 1u32..3,
        mb in 1u32..5,
    ) {
        let m = small_model(pp * 2);
        let mut par = ParallelismConfig::new(tp, pp, dp);
        par.microbatches = mb;
        let g = build_training_iteration(&m, &par);
        prop_assert_eq!(g.validate(), Ok(()));
        let mut sends = 0usize;
        let mut recvs = 0usize;
        for op in &g.ops {
            if let astral_model::OpKind::Comm { bytes, coll, .. } = op.kind {
                prop_assert!(bytes > 0, "empty comm op {}", op.name);
                match coll {
                    astral_model::Collective::Send => sends += 1,
                    astral_model::Collective::Recv => recvs += 1,
                    _ => {}
                }
            }
        }
        prop_assert_eq!(sends, recvs);
        prop_assert_eq!(sends, 2 * (pp as usize - 1) * mb as usize);
    }

    /// Graph FLOPs scale linearly with microbatch count.
    #[test]
    fn flops_scale_with_microbatches(mb in 1u32..6) {
        let m = small_model(4);
        let mut p1 = ParallelismConfig::new(1, 2, 1);
        p1.microbatches = mb;
        let mut p2 = p1;
        p2.microbatches = 2 * mb;
        let f1 = build_training_iteration(&m, &p1).total_flops();
        let f2 = build_training_iteration(&m, &p2).total_flops();
        prop_assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    /// Chakra JSON round trip is lossless for arbitrary generated graphs.
    #[test]
    fn chakra_round_trip(pp in 1u32..3, mb in 1u32..4) {
        let m = small_model(pp * 2);
        let mut par = ParallelismConfig::new(2, pp, 2);
        par.microbatches = mb;
        let g = build_training_iteration(&m, &par);
        let back = chakra::from_json(&chakra::to_json(&g)).unwrap();
        prop_assert_eq!(back.len(), g.len());
        prop_assert_eq!(back.total_flops(), g.total_flops());
        prop_assert_eq!(back.total_comm_bytes(), g.total_comm_bytes());
        prop_assert_eq!(back.total_mem_bytes(), g.total_mem_bytes());
    }

    /// Parameter count is monotone in every size knob.
    #[test]
    fn params_monotone(extra_layers in 1u32..32, extra_hidden in 1u64..16) {
        let base = small_model(4);
        let mut more_layers = base.clone();
        more_layers.layers += extra_layers;
        let mut wider = base.clone();
        wider.hidden += extra_hidden * 64;
        prop_assert!(more_layers.param_count() > base.param_count());
        prop_assert!(wider.param_count() > base.param_count());
    }
}
