//! Chakra-like execution-trace interchange (paper §4.3, method (i)).
//!
//! Seer's first operator-dependency path converts profiler output (PyTorch
//! profiler → Chakra) into an executor graph. This module defines the JSON
//! schema our tooling exchanges — a simplified Chakra ET: a list of nodes
//! with `id`, `name`, `op` (type + attributes), and `deps` — and converts it
//! to and from [`OperatorGraph`]. The same format doubles as the *handcraft
//! template* (§4.3 method (ii)): model experts author new operators and
//! overlaps directly in JSON.

use crate::ops::{OpId, OpKind, Operator, OperatorGraph};
use serde::{Deserialize, Serialize};

/// A serialized trace: the interchange form of an [`OperatorGraph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Schema identifier.
    pub schema: String,
    /// Number of pipeline devices.
    pub devices: u32,
    /// Nodes in id order.
    pub nodes: Vec<TraceNode>,
}

/// One trace node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceNode {
    /// Dense id.
    pub id: u32,
    /// Operator name.
    pub name: String,
    /// Executing device (pipeline stage).
    pub device: u32,
    /// Operator attributes.
    pub op: OpKind,
    /// Ids of operators that must finish first.
    pub deps: Vec<u32>,
}

/// Schema tag written by [`export_trace`].
pub const SCHEMA: &str = "astral-seer-et-v1";

/// Serialize a graph to the interchange form.
pub fn export_trace(g: &OperatorGraph) -> Trace {
    Trace {
        schema: SCHEMA.to_string(),
        devices: g.devices,
        nodes: g
            .ops
            .iter()
            .map(|o| TraceNode {
                id: o.id.0,
                name: o.name.clone(),
                device: o.device,
                op: o.kind,
                deps: o.deps.iter().map(|d| d.0).collect(),
            })
            .collect(),
    }
}

/// Errors importing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// Unknown schema tag.
    BadSchema(String),
    /// Node ids are not dense/in order.
    BadIds,
    /// The resulting graph failed validation.
    Invalid(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::BadSchema(s) => write!(f, "unsupported trace schema {s:?}"),
            ImportError::BadIds => write!(f, "trace node ids must be dense and ordered"),
            ImportError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Deserialize the interchange form into a validated graph.
pub fn import_trace(t: &Trace) -> Result<OperatorGraph, ImportError> {
    if t.schema != SCHEMA {
        return Err(ImportError::BadSchema(t.schema.clone()));
    }
    let mut g = OperatorGraph::new(t.devices);
    for (i, n) in t.nodes.iter().enumerate() {
        if n.id as usize != i {
            return Err(ImportError::BadIds);
        }
        g.ops.push(Operator {
            id: OpId(n.id),
            name: n.name.clone(),
            device: n.device,
            kind: n.op,
            deps: n.deps.iter().map(|&d| OpId(d)).collect(),
        });
    }
    g.validate().map_err(ImportError::Invalid)?;
    Ok(g)
}

/// JSON round-trip helpers.
pub fn to_json(g: &OperatorGraph) -> String {
    serde_json::to_string_pretty(&export_trace(g)).expect("graph serializes")
}

/// Parse a JSON trace (profiler export or handcrafted template).
pub fn from_json(json: &str) -> Result<OperatorGraph, ImportError> {
    let trace: Trace =
        serde_json::from_str(json).map_err(|e| ImportError::Invalid(e.to_string()))?;
    import_trace(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_training_iteration;
    use crate::config::ModelConfig;
    use crate::parallel::ParallelismConfig;

    fn graph() -> OperatorGraph {
        let mut m = ModelConfig::llama3_8b();
        m.layers = 4;
        build_training_iteration(&m, &ParallelismConfig::new(2, 2, 2))
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let g = graph();
        let json = to_json(&g);
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.devices, g.devices);
        assert_eq!(back.total_flops(), g.total_flops());
        assert_eq!(back.total_comm_bytes(), g.total_comm_bytes());
        for (a, b) in g.ops.iter().zip(&back.ops) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.deps, b.deps);
        }
    }

    #[test]
    fn bad_schema_is_rejected() {
        let mut t = export_trace(&graph());
        t.schema = "something-else".into();
        assert!(matches!(import_trace(&t), Err(ImportError::BadSchema(_))));
    }

    #[test]
    fn scrambled_ids_are_rejected() {
        let mut t = export_trace(&graph());
        t.nodes[0].id = 99;
        assert!(matches!(import_trace(&t), Err(ImportError::BadIds)));
    }

    #[test]
    fn handcraft_template_parses() {
        // The §4.3(ii) path: a hand-authored JSON template with a custom
        // operator overlapped against an existing one.
        let json = r#"{
            "schema": "astral-seer-et-v1",
            "devices": 1,
            "nodes": [
                {"id": 0, "name": "SA", "device": 0,
                 "op": {"Compute": {"flops": 1e9}}, "deps": []},
                {"id": 1, "name": "MyNewFusedOp", "device": 0,
                 "op": {"Fused": {"flops": 5e8, "bytes": 1048576}}, "deps": [0]},
                {"id": 2, "name": "OverlappedComm", "device": 0,
                 "op": {"Comm": {"coll": "AllReduce", "group": "Tp",
                                  "group_size": 8, "bytes": 4194304}},
                 "deps": [0]}
            ]
        }"#;
        let g = from_json(json).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.ops[1].name, "MyNewFusedOp");
        assert!((g.total_flops() - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn cyclic_trace_is_rejected() {
        let json = r#"{
            "schema": "astral-seer-et-v1",
            "devices": 1,
            "nodes": [
                {"id": 0, "name": "A", "device": 0,
                 "op": {"Compute": {"flops": 1.0}}, "deps": [1]},
                {"id": 1, "name": "B", "device": 0,
                 "op": {"Compute": {"flops": 1.0}}, "deps": [0]}
            ]
        }"#;
        assert!(matches!(from_json(json), Err(ImportError::Invalid(_))));
    }
}
