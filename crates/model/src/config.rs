//! Transformer model configurations and their arithmetic.
//!
//! Parameter counts, per-token FLOPs, and per-operator weight sizes for
//! dense (LLaMA/GPT-style) and MoE transformers. The templates cover the
//! models the paper evaluates with: LLaMA 2/3, GPT-3-175B, a Hunyuan-like
//! trillion-parameter MoE, and a DeepSeek-R1-like MoE.

use serde::{Deserialize, Serialize};

/// Mixture-of-experts extension of a transformer layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Experts per MoE layer.
    pub experts: u32,
    /// Experts activated per token.
    pub top_k: u32,
    /// Hidden size of each expert's FFN.
    pub expert_ffn_hidden: u64,
}

/// A transformer model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Transformer layers.
    pub layers: u32,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u32,
    /// Key/value heads (GQA; == heads for MHA).
    pub kv_heads: u32,
    /// FFN intermediate size (per expert for MoE).
    pub ffn_hidden: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Training sequence length.
    pub seq_len: u64,
    /// Bytes per element (2 = bf16).
    pub dtype_bytes: u32,
    /// True for gated (SwiGLU, 3-matrix) FFNs; false for classic 2-matrix
    /// GeLU FFNs (GPT-3).
    pub gated_ffn: bool,
    /// MoE extension; `None` = dense.
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// LLaMA-3-70B (GQA, SwiGLU).
    pub fn llama3_70b() -> Self {
        ModelConfig {
            name: "LLaMA-3-70B".into(),
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            ffn_hidden: 28672,
            vocab: 128256,
            seq_len: 8192,
            dtype_bytes: 2,
            gated_ffn: true,
            moe: None,
        }
    }

    /// LLaMA-3-8B.
    pub fn llama3_8b() -> Self {
        ModelConfig {
            name: "LLaMA-3-8B".into(),
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            ffn_hidden: 14336,
            vocab: 128256,
            seq_len: 8192,
            dtype_bytes: 2,
            gated_ffn: true,
            moe: None,
        }
    }

    /// LLaMA-2-70B.
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "LLaMA-2-70B".into(),
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            ffn_hidden: 28672,
            vocab: 32000,
            seq_len: 4096,
            dtype_bytes: 2,
            gated_ffn: true,
            moe: None,
        }
    }

    /// GPT-3-175B (MHA, classic 4·h FFN).
    pub fn gpt3_175b() -> Self {
        ModelConfig {
            name: "GPT-3-175B".into(),
            layers: 96,
            hidden: 12288,
            heads: 96,
            kv_heads: 96,
            ffn_hidden: 49152,
            vocab: 50257,
            seq_len: 2048,
            dtype_bytes: 2,
            gated_ffn: false,
            moe: None,
        }
    }

    /// A Hunyuan-like trillion-parameter MoE (the paper's in-production
    /// model exceeds one trillion parameters; exact shape is proprietary,
    /// so this is a plausible stand-in with the same scale).
    pub fn hunyuan_moe_1t() -> Self {
        ModelConfig {
            name: "Hunyuan-MoE-1T".into(),
            layers: 64,
            hidden: 6400,
            heads: 80,
            kv_heads: 8,
            ffn_hidden: 18432,
            vocab: 128000,
            seq_len: 8192,
            dtype_bytes: 2,
            gated_ffn: true,
            moe: Some(MoeConfig {
                experts: 64,
                top_k: 8,
                expert_ffn_hidden: 18432,
            }),
        }
    }

    /// A DeepSeek-R1-like MoE (many small experts, high sparsity).
    pub fn deepseek_r1_like() -> Self {
        ModelConfig {
            name: "DeepSeek-R1-like".into(),
            layers: 61,
            hidden: 7168,
            heads: 128,
            kv_heads: 128,
            ffn_hidden: 18432,
            vocab: 129280,
            seq_len: 4096,
            dtype_bytes: 2,
            gated_ffn: true,
            moe: Some(MoeConfig {
                experts: 256,
                top_k: 8,
                expert_ffn_hidden: 2048,
            }),
        }
    }

    /// True for MoE models.
    pub fn is_moe(&self) -> bool {
        self.moe.is_some()
    }

    /// A reduced-depth variant of the same architecture — the
    /// simulation-scale knob: a fleet workload generator varies job sizes
    /// by shrinking layer count while keeping the layer shape (and thus
    /// the per-layer arithmetic) faithful to the template.
    pub fn with_layers(&self, layers: u32) -> Self {
        ModelConfig {
            name: format!("{}-L{layers}", self.name),
            layers: layers.max(1),
            ..self.clone()
        }
    }

    /// Gradient bytes exchanged per data-parallel AllReduce step: every
    /// parameter's gradient at training precision.
    pub fn grad_bytes(&self) -> u64 {
        self.param_count() * self.dtype_bytes as u64
    }

    /// Key/value projection width (GQA shrinks it).
    pub fn kv_dim(&self) -> u64 {
        self.hidden * self.kv_heads as u64 / self.heads as u64
    }

    /// Attention parameters per layer: QKV + output projection.
    pub fn attn_params_per_layer(&self) -> u64 {
        let qkv = self.hidden * (self.hidden + 2 * self.kv_dim());
        let proj = self.hidden * self.hidden;
        qkv + proj
    }

    /// FFN weight matrices (3 for gated SwiGLU, 2 for classic GeLU).
    pub fn ffn_matrices(&self) -> u64 {
        if self.gated_ffn {
            3
        } else {
            2
        }
    }

    /// FFN parameters per layer (dense path or the MoE experts' total).
    pub fn ffn_params_per_layer(&self) -> u64 {
        let mats = self.ffn_matrices();
        match self.moe {
            None => mats * self.hidden * self.ffn_hidden,
            Some(m) => mats * self.hidden * m.expert_ffn_hidden * m.experts as u64,
        }
    }

    /// Total parameters per transformer layer (attention + FFN + norms).
    pub fn params_per_layer(&self) -> u64 {
        self.attn_params_per_layer() + self.ffn_params_per_layer() + 2 * self.hidden
    }

    /// Embedding (and tied output head) parameters.
    pub fn embedding_params(&self) -> u64 {
        self.vocab * self.hidden
    }

    /// Total model parameters.
    pub fn param_count(&self) -> u64 {
        self.layers as u64 * self.params_per_layer() + 2 * self.embedding_params()
    }

    /// Parameters *active* per token (MoE activates `top_k` experts).
    pub fn active_params_per_layer(&self) -> u64 {
        match self.moe {
            None => self.params_per_layer(),
            Some(m) => {
                self.attn_params_per_layer()
                    + 3 * self.hidden * m.expert_ffn_hidden * m.top_k as u64
                    + 2 * self.hidden
            }
        }
    }

    /// Forward FLOPs per token per layer (dense matmuls; attention
    /// quadratic term uses `seq` as the context length).
    pub fn fwd_flops_per_token_layer(&self, seq: u64) -> f64 {
        let h = self.hidden as f64;
        let qkv = 2.0 * h * (self.hidden + 2 * self.kv_dim()) as f64;
        let core = 4.0 * seq as f64 * h; // QKᵀ + AV
        let proj = 2.0 * h * h;
        let mats = self.ffn_matrices() as f64;
        let ffn = match self.moe {
            None => 2.0 * mats * h * self.ffn_hidden as f64, // 2 flops/MAC
            Some(m) => 2.0 * mats * h * m.expert_ffn_hidden as f64 * m.top_k as f64,
        };
        qkv + core + proj + ffn
    }

    /// Forward FLOPs per token for the whole model (+ logit).
    pub fn fwd_flops_per_token(&self, seq: u64) -> f64 {
        self.layers as f64 * self.fwd_flops_per_token_layer(seq)
            + 2.0 * self.hidden as f64 * self.vocab as f64
    }

    /// Training FLOPs per token (fwd + 2× bwd ≈ 3× fwd).
    pub fn train_flops_per_token(&self, seq: u64) -> f64 {
        3.0 * self.fwd_flops_per_token(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_parameter_count_is_175b() {
        let p = ModelConfig::gpt3_175b().param_count();
        // Classic GPT-3 arithmetic lands near 175B; our layer accounting
        // (no positional embeddings, tied head counted twice) should be
        // within a few percent.
        assert!((p as f64 - 175e9).abs() / 175e9 < 0.05, "gpt3 params = {p}");
    }

    #[test]
    fn llama3_70b_parameter_count() {
        let p = ModelConfig::llama3_70b().param_count();
        assert!((p as f64 - 70e9).abs() / 70e9 < 0.07, "llama3-70b = {p}");
    }

    #[test]
    fn hunyuan_exceeds_one_trillion() {
        let m = ModelConfig::hunyuan_moe_1t();
        assert!(m.param_count() > 1_000_000_000_000, "{}", m.param_count());
        // ...but activates far fewer per token.
        assert!(m.active_params_per_layer() < m.params_per_layer() / 4);
    }

    #[test]
    fn gqa_shrinks_kv() {
        let m = ModelConfig::llama3_70b();
        assert_eq!(m.kv_dim(), 1024);
        let mha = ModelConfig::gpt3_175b();
        assert_eq!(mha.kv_dim(), mha.hidden);
    }

    #[test]
    fn training_flops_sanity() {
        // The 6·N rule of thumb: train FLOPs/token ≈ 6 × params for dense
        // models when seq ≪ hidden·intensity.
        let m = ModelConfig::llama3_8b();
        let f = m.train_flops_per_token(1); // exclude attention quadratic
        let six_n = 6.0 * m.param_count() as f64;
        assert!((f - six_n).abs() / six_n < 0.15, "f={f:.3e} 6N={six_n:.3e}");
    }

    #[test]
    fn moe_flops_use_topk_not_all_experts() {
        let m = ModelConfig::hunyuan_moe_1t();
        let dense_equiv = ModelConfig {
            moe: None,
            ffn_hidden: m.moe.unwrap().expert_ffn_hidden,
            ..m.clone()
        };
        let fm = m.fwd_flops_per_token_layer(1);
        let fd = dense_equiv.fwd_flops_per_token_layer(1);
        // MoE top-8 FFN ≈ 8 × dense-FFN flops (attention part shared).
        assert!(fm > fd * 3.0 && fm < fd * 8.0);
    }

    #[test]
    fn with_layers_scales_depth_only() {
        let full = ModelConfig::llama3_8b();
        let small = full.with_layers(4);
        assert_eq!(small.layers, 4);
        assert_eq!(small.hidden, full.hidden);
        assert_eq!(small.params_per_layer(), full.params_per_layer());
        assert!(small.param_count() < full.param_count());
        assert_eq!(small.grad_bytes(), small.param_count() * 2);
        // Degenerate depth clamps to one layer instead of a zero model.
        assert_eq!(full.with_layers(0).layers, 1);
    }

    #[test]
    fn serde_round_trip() {
        let m = ModelConfig::deepseek_r1_like();
        let j = serde_json::to_string(&m).unwrap();
        let back: ModelConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(m, back);
    }
}
