//! Parallelism configuration and communication-group construction.
//!
//! Megatron-style rank decomposition: `rank = (pp_idx · dp + dp_idx) · tp +
//! tp_idx`, so TP groups are contiguous GPU ranges (they should sit inside
//! one NVLink domain), DP groups stride by `tp`, and PP groups stride by
//! `tp·dp`. Expert parallelism subdivides each DP group.

use serde::{Deserialize, Serialize};

/// How data-parallel gradients are synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DpSync {
    /// Plain gradient AllReduce at the end of the iteration.
    #[default]
    AllReduce,
    /// ZeRO-1/2: ReduceScatter gradients + AllGather updated parameters.
    Zero1,
    /// ZeRO-3: parameters sharded; AllGather before every layer's forward
    /// *and* backward, plus gradient ReduceScatter — the "extremely heavy
    /// communication traffic" of Figure 13.
    Zero3,
}

/// A 4D parallelism layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Tensor-parallel group size.
    pub tp: u32,
    /// Pipeline stages.
    pub pp: u32,
    /// Data-parallel replicas.
    pub dp: u32,
    /// Expert-parallel group size (must divide `dp`; 1 = no EP).
    pub ep: u32,
    /// Gradient synchronization style.
    pub zero: DpSync,
    /// Microbatches per iteration (pipeline depth utilization).
    pub microbatches: u32,
    /// Sequences per microbatch per DP replica.
    pub micro_batch_size: u32,
    /// Overlap the DP gradient synchronization with the tail backward
    /// compute (bucketed grad reduce) — the reason DP traffic tolerates
    /// slow cross-DC links in Figure 13.
    pub overlap_grad_sync: bool,
}

impl ParallelismConfig {
    /// A simple layout with sensible defaults.
    pub fn new(tp: u32, pp: u32, dp: u32) -> Self {
        ParallelismConfig {
            tp,
            pp,
            dp,
            ep: 1,
            zero: DpSync::AllReduce,
            microbatches: 2 * pp,
            micro_batch_size: 1,
            overlap_grad_sync: true,
        }
    }

    /// Total GPUs.
    pub fn world(&self) -> u32 {
        self.tp * self.pp * self.dp
    }

    /// Global batch size in sequences.
    pub fn global_batch(&self) -> u64 {
        self.micro_batch_size as u64 * self.microbatches as u64 * self.dp as u64
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.tp == 0 || self.pp == 0 || self.dp == 0 || self.ep == 0 {
            return Err("parallel degrees must be positive".into());
        }
        if !self.dp.is_multiple_of(self.ep) {
            return Err(format!("ep {} must divide dp {}", self.ep, self.dp));
        }
        if self.microbatches == 0 || self.micro_batch_size == 0 {
            return Err("batching must be positive".into());
        }
        Ok(())
    }

    /// Rank from (pp, dp, tp) coordinates.
    pub fn rank_of(&self, pp_idx: u32, dp_idx: u32, tp_idx: u32) -> u32 {
        (pp_idx * self.dp + dp_idx) * self.tp + tp_idx
    }

    /// (pp, dp, tp) coordinates of a rank.
    pub fn coords_of(&self, rank: u32) -> (u32, u32, u32) {
        let tp_idx = rank % self.tp;
        let dp_idx = (rank / self.tp) % self.dp;
        let pp_idx = rank / (self.tp * self.dp);
        (pp_idx, dp_idx, tp_idx)
    }

    /// All TP groups (each a list of ranks).
    pub fn tp_groups(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for p in 0..self.pp {
            for d in 0..self.dp {
                out.push((0..self.tp).map(|t| self.rank_of(p, d, t)).collect());
            }
        }
        out
    }

    /// All DP groups.
    pub fn dp_groups(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for p in 0..self.pp {
            for t in 0..self.tp {
                out.push((0..self.dp).map(|d| self.rank_of(p, d, t)).collect());
            }
        }
        out
    }

    /// All PP groups (the pipelines).
    pub fn pp_groups(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for d in 0..self.dp {
            for t in 0..self.tp {
                out.push((0..self.pp).map(|p| self.rank_of(p, d, t)).collect());
            }
        }
        out
    }

    /// All EP groups: each DP group split into `dp/ep` chunks of `ep` ranks.
    pub fn ep_groups(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for group in self.dp_groups() {
            for chunk in group.chunks(self.ep as usize) {
                out.push(chunk.to_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ParallelismConfig {
        ParallelismConfig::new(4, 2, 3)
    }

    #[test]
    fn world_and_coords_round_trip() {
        let c = cfg();
        assert_eq!(c.world(), 24);
        for r in 0..c.world() {
            let (p, d, t) = c.coords_of(r);
            assert_eq!(c.rank_of(p, d, t), r);
        }
    }

    #[test]
    fn tp_groups_are_contiguous() {
        let c = cfg();
        for g in c.tp_groups() {
            assert_eq!(g.len(), 4);
            for w in g.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn groups_partition_the_world() {
        let c = cfg();
        for groups in [c.tp_groups(), c.dp_groups(), c.pp_groups()] {
            let mut all: Vec<u32> = groups.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..c.world()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn dp_groups_fix_pp_and_tp() {
        let c = cfg();
        for g in c.dp_groups() {
            let (p0, _, t0) = c.coords_of(g[0]);
            for &r in &g {
                let (p, _, t) = c.coords_of(r);
                assert_eq!((p, t), (p0, t0));
            }
        }
    }

    #[test]
    fn ep_subdivides_dp() {
        let mut c = ParallelismConfig::new(2, 2, 4);
        c.ep = 2;
        assert!(c.validate().is_ok());
        let eps = c.ep_groups();
        assert_eq!(eps.len(), c.pp as usize * c.tp as usize * 2);
        for g in eps {
            assert_eq!(g.len(), 2);
        }
    }

    #[test]
    fn validation_catches_bad_layouts() {
        let mut c = ParallelismConfig::new(2, 2, 3);
        c.ep = 2; // does not divide dp=3
        assert!(c.validate().is_err());
        let mut c2 = ParallelismConfig::new(0, 1, 1);
        c2.tp = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn global_batch_arithmetic() {
        let mut c = ParallelismConfig::new(8, 8, 4);
        c.microbatches = 16;
        c.micro_batch_size = 2;
        assert_eq!(c.global_batch(), 2 * 16 * 4);
    }
}
