//! Operator graphs: the execution unit Seer forecasts.
//!
//! A training or inference iteration is a DAG of operators — computation,
//! memory access, and communication (paper §4.3, Table 1). Each operator is
//! tagged with the pipeline *device* (stage) it executes on; Seer replays
//! the DAG with per-device compute and communication streams.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Operator identifier within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Collective operation kind for communication operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Ring/two-level AllReduce.
    AllReduce,
    /// ReduceScatter.
    ReduceScatter,
    /// AllGather.
    AllGather,
    /// All-to-all (EP dispatch/combine).
    AllToAll,
    /// Point-to-point send (PP).
    Send,
    /// Point-to-point receive (PP).
    Recv,
    /// Broadcast.
    Broadcast,
}

/// Which logical communicator a comm operator runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupKind {
    /// Tensor-parallel group.
    Tp,
    /// Data-parallel group.
    Dp,
    /// Expert-parallel group.
    Ep,
    /// Pipeline peer (send/recv).
    Pp,
}

/// What an operator does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Pure computation.
    Compute {
        /// Floating-point operations.
        flops: f64,
    },
    /// Pure memory traffic (weight/activation loads from HBM).
    Memory {
        /// Bytes moved through HBM.
        bytes: u64,
    },
    /// Fused memory + computation (Table 1's "Mem. + Comp." rows).
    Fused {
        /// Floating-point operations.
        flops: f64,
        /// Bytes moved through HBM.
        bytes: u64,
    },
    /// Collective or point-to-point communication.
    Comm {
        /// Collective kind.
        coll: Collective,
        /// Communicator.
        group: GroupKind,
        /// Participants in the communicator.
        group_size: u32,
        /// Per-rank buffer bytes.
        bytes: u64,
    },
}

impl OpKind {
    /// Coarse classification (the "Types" column of Table 1).
    pub fn type_label(&self) -> &'static str {
        match self {
            OpKind::Compute { .. } => "Comp.",
            OpKind::Memory { .. } => "Mem.",
            OpKind::Fused { .. } => "Mem. + Comp.",
            OpKind::Comm { .. } => "Comm.",
        }
    }
}

/// One operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Operator {
    /// Identifier (== index in the graph).
    pub id: OpId,
    /// Name, e.g. `"GQAQKVComputation"`.
    pub name: String,
    /// Pipeline device (stage) the operator runs on.
    pub device: u32,
    /// Work description.
    pub kind: OpKind,
    /// Operators that must complete first.
    pub deps: Vec<OpId>,
}

/// A DAG of operators.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OperatorGraph {
    /// Operators; `ops[i].id == OpId(i)`.
    pub ops: Vec<Operator>,
    /// Number of pipeline devices referenced.
    pub devices: u32,
}

impl OperatorGraph {
    /// Empty graph for `devices` pipeline stages.
    pub fn new(devices: u32) -> Self {
        OperatorGraph {
            ops: Vec::new(),
            devices,
        }
    }

    /// Append an operator; returns its id.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        device: u32,
        kind: OpKind,
        deps: Vec<OpId>,
    ) -> OpId {
        debug_assert!(device < self.devices);
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Operator {
            id,
            name: name.into(),
            device,
            kind,
            deps,
        });
        id
    }

    /// Operator lookup.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.0 as usize]
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Add a dependency edge after construction (pipeline wiring creates
    /// edges that run against id order).
    pub fn add_dep(&mut self, op: OpId, dep: OpId) {
        debug_assert!((op.0 as usize) < self.ops.len() && (dep.0 as usize) < self.ops.len());
        self.ops[op.0 as usize].deps.push(dep);
    }

    /// Validate: ids are dense, devices are in range, dependency targets
    /// exist, no self-deps, and the graph is acyclic.
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.id.0 as usize != i {
                return Err(format!("op at index {i} has id {}", op.id));
            }
            if op.device >= self.devices {
                return Err(format!("{} on unknown device {}", op.id, op.device));
            }
            for d in &op.deps {
                if d.0 as usize >= self.ops.len() {
                    return Err(format!("{} depends on unknown {d}", op.id));
                }
                if *d == op.id {
                    return Err(format!("{} depends on itself", op.id));
                }
            }
        }
        if self.topo_order().is_none() {
            return Err("operator graph contains a cycle".into());
        }
        Ok(())
    }

    /// A topological order of the operators, or `None` if cyclic (Kahn).
    pub fn topo_order(&self) -> Option<Vec<OpId>> {
        let n = self.ops.len();
        let mut indegree = vec![0u32; n];
        let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
        for op in &self.ops {
            for d in &op.deps {
                indegree[op.id.0 as usize] += 1;
                out_edges[d.0 as usize].push(op.id.0);
            }
        }
        let mut queue: std::collections::VecDeque<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(OpId(i));
            for &j in &out_edges[i as usize] {
                indegree[j as usize] -= 1;
                if indegree[j as usize] == 0 {
                    queue.push_back(j);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Total FLOPs in the graph.
    pub fn total_flops(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                OpKind::Compute { flops } | OpKind::Fused { flops, .. } => flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Total communication bytes (per-rank buffer sizes summed over comm
    /// ops).
    pub fn total_comm_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                OpKind::Comm { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total HBM traffic.
    pub fn total_mem_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                OpKind::Memory { bytes } | OpKind::Fused { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Distinct `(name, type)` rows in first-appearance order — the Table-1
    /// inventory view.
    pub fn operator_inventory(&self) -> Vec<(String, &'static str)> {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for op in &self.ops {
            let base = op.name.split('@').next().unwrap_or(&op.name).to_string();
            if seen.insert(base.clone(), ()).is_none() {
                out.push((base, op.kind.type_label()));
            }
        }
        out
    }

    /// Operators of one device, in id order.
    pub fn device_ops(&self, device: u32) -> impl Iterator<Item = &Operator> {
        self.ops.iter().filter(move |o| o.device == device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OperatorGraph {
        let mut g = OperatorGraph::new(2);
        let a = g.push("LoadWeight", 0, OpKind::Memory { bytes: 100 }, vec![]);
        let b = g.push(
            "EmbeddingComputation",
            0,
            OpKind::Compute { flops: 1e6 },
            vec![a],
        );
        let c = g.push(
            "PPSend",
            0,
            OpKind::Comm {
                coll: Collective::Send,
                group: GroupKind::Pp,
                group_size: 2,
                bytes: 64,
            },
            vec![b],
        );
        g.push(
            "PPRecv",
            1,
            OpKind::Comm {
                coll: Collective::Recv,
                group: GroupKind::Pp,
                group_size: 2,
                bytes: 64,
            },
            vec![c],
        );
        g
    }

    #[test]
    fn wellformed_graph_validates() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn forward_dep_is_rejected() {
        let mut g = OperatorGraph::new(1);
        g.push("A", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        g.ops[0].deps.push(OpId(5));
        assert!(g.validate().is_err());
    }

    #[test]
    fn totals() {
        let g = tiny();
        assert_eq!(g.total_flops(), 1e6);
        assert_eq!(g.total_comm_bytes(), 128);
        assert_eq!(g.total_mem_bytes(), 100);
    }

    #[test]
    fn inventory_dedups_by_base_name() {
        let mut g = OperatorGraph::new(1);
        g.push(
            "RMSNormComputation@L0",
            0,
            OpKind::Compute { flops: 1.0 },
            vec![],
        );
        g.push(
            "RMSNormComputation@L1",
            0,
            OpKind::Compute { flops: 1.0 },
            vec![],
        );
        g.push(
            "RMSNormLoadWeight@L0",
            0,
            OpKind::Memory { bytes: 1 },
            vec![],
        );
        let inv = g.operator_inventory();
        assert_eq!(
            inv,
            vec![
                ("RMSNormComputation".to_string(), "Comp."),
                ("RMSNormLoadWeight".to_string(), "Mem."),
            ]
        );
    }

    #[test]
    fn type_labels_match_table1() {
        assert_eq!(OpKind::Compute { flops: 0.0 }.type_label(), "Comp.");
        assert_eq!(OpKind::Memory { bytes: 0 }.type_label(), "Mem.");
        assert_eq!(
            OpKind::Fused {
                flops: 0.0,
                bytes: 0
            }
            .type_label(),
            "Mem. + Comp."
        );
        assert_eq!(
            OpKind::Comm {
                coll: Collective::AllReduce,
                group: GroupKind::Tp,
                group_size: 8,
                bytes: 0
            }
            .type_label(),
            "Comm."
        );
    }
}
