//! # astral-model — LLM workload models
//!
//! The workload substrate of the Astral reproduction:
//!
//! * [`ModelConfig`] — dense and MoE transformer shapes with parameter /
//!   FLOP arithmetic, and templates for the models the paper evaluates
//!   (LLaMA 2/3, GPT-3-175B, a Hunyuan-like 1T MoE, a DeepSeek-R1-like MoE).
//! * [`ParallelismConfig`] — Megatron-style TP/PP/DP(+EP, ZeRO) layouts and
//!   communicator-group construction.
//! * [`OperatorGraph`] + [`build_training_iteration`] /
//!   [`build_inference`] — Table-1-faithful operator DAGs with 1F1B
//!   pipeline sequencing, the unit Seer forecasts.
//! * [`chakra`] — Chakra-like JSON trace interchange (profiler import and
//!   handcraft templates).
//!
//! ```
//! use astral_model::{build_training_iteration, ModelConfig, ParallelismConfig};
//!
//! let mut model = ModelConfig::llama3_8b();
//! model.layers = 8;
//! let par = ParallelismConfig::new(2, 2, 2);
//! let graph = build_training_iteration(&model, &par);
//! assert!(graph.topo_order().is_some());
//! ```

#![warn(missing_docs)]

mod builder;
pub mod chakra;
mod config;
mod ops;
mod parallel;

pub use builder::{
    build_inference, build_training_iteration, try_build_inference, try_build_training_iteration,
    BuildError, InferencePhase,
};
pub use config::{ModelConfig, MoeConfig};
pub use ops::{Collective, GroupKind, OpId, OpKind, Operator, OperatorGraph};
pub use parallel::{DpSync, ParallelismConfig};
