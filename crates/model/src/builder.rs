//! Operator-graph construction for training and inference iterations.
//!
//! Reproduces Seer's "operator dependency generation" (paper §4.3): a
//! training iteration becomes a DAG of Table-1 operators per pipeline stage
//! and microbatch, sequenced by the 1F1B (PipeDream-flush) schedule, wired
//! across stages through PPSend/PPRecv pairs, and closed by the DP gradient
//! synchronization dictated by the ZeRO mode. Inference builders produce
//! prefill (compute-bound) and decode (memory-bound, KV-cache) graphs.

use crate::config::ModelConfig;
use crate::ops::{Collective, GroupKind, OpId, OpKind, OperatorGraph};
use crate::parallel::{DpSync, ParallelismConfig};

/// Inference phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferencePhase {
    /// Prompt processing: all prompt tokens at once.
    Prefill {
        /// Prompt length in tokens.
        prompt_len: u64,
    },
    /// Autoregressive generation: one token per sequence per step.
    Decode {
        /// Current context (KV cache) length.
        context_len: u64,
    },
}

/// Ids bracketing one (stage, microbatch, direction) op group.
#[derive(Debug, Clone, Copy)]
struct GroupEnds {
    first: OpId,
    last: OpId,
    send: Option<OpId>,
    recv: Option<OpId>,
}

/// Rejected model/parallelism combinations — both configs are user
/// supplied, so the checks surface as values rather than panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `ParallelismConfig::validate` failed (zero degrees, ep ∤ dp, …).
    InvalidParallelism(String),
    /// The layer count does not divide evenly into pipeline stages.
    LayersNotDivisible {
        /// Model layer count.
        layers: u32,
        /// Pipeline-parallel degree.
        pp: u32,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidParallelism(why) => {
                write!(f, "invalid parallelism config: {why}")
            }
            BuildError::LayersNotDivisible { layers, pp } => {
                write!(f, "layers {layers} must divide evenly into pp {pp} stages")
            }
        }
    }
}

impl std::error::Error for BuildError {}

fn check_configs(model: &ModelConfig, par: &ParallelismConfig) -> Result<(), BuildError> {
    par.validate().map_err(BuildError::InvalidParallelism)?;
    if !model.layers.is_multiple_of(par.pp) {
        return Err(BuildError::LayersNotDivisible {
            layers: model.layers,
            pp: par.pp,
        });
    }
    Ok(())
}

/// Build the operator graph of one *training* iteration.
///
/// Devices are pipeline stages (TP peers execute the same timeline; TP
/// communication appears as ops on the stage's stream; DP replicas are
/// identical, so one pipeline is representative and DP sync ops carry the
/// DP group size).
///
/// Panics on invalid configs; [`try_build_training_iteration`] is the
/// fallible variant.
pub fn build_training_iteration(model: &ModelConfig, par: &ParallelismConfig) -> OperatorGraph {
    try_build_training_iteration(model, par).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_training_iteration`]: user-supplied configs that don't
/// fit together come back as a [`BuildError`].
pub fn try_build_training_iteration(
    model: &ModelConfig,
    par: &ParallelismConfig,
) -> Result<OperatorGraph, BuildError> {
    check_configs(model, par)?;
    let pp = par.pp;
    let m = par.microbatches as usize;
    let mut g = OperatorGraph::new(pp);

    // Per-(stage, mb) groups, generated independently, then wired.
    let mut fwd = vec![vec![None; m]; pp as usize];
    let mut bwd = vec![vec![None; m]; pp as usize];
    for s in 0..pp {
        for k in 0..m {
            fwd[s as usize][k] = Some(emit_forward(&mut g, model, par, s, k));
            bwd[s as usize][k] = Some(emit_backward(&mut g, model, par, s, k));
        }
    }

    // Cross-stage wiring: recv ← matching send.
    for s in 0..pp {
        for k in 0..m {
            if s > 0 {
                if let (Some(r), Some(snd)) = (
                    fwd[s as usize][k].as_ref().unwrap().recv,
                    fwd[s as usize - 1][k].as_ref().unwrap().send,
                ) {
                    g.add_dep(r, snd);
                }
            }
            if s + 1 < pp {
                if let (Some(r), Some(snd)) = (
                    bwd[s as usize][k].as_ref().unwrap().recv,
                    bwd[s as usize + 1][k].as_ref().unwrap().send,
                ) {
                    g.add_dep(r, snd);
                }
            }
        }
    }

    // 1F1B sequencing per stage: chain group k's first op after group k-1's
    // last op in schedule order.
    for s in 0..pp {
        let warmup = ((pp - s - 1) as usize).min(m);
        let mut order: Vec<GroupEnds> = Vec::with_capacity(2 * m);
        for f in fwd[s as usize].iter().take(warmup) {
            order.push(f.unwrap());
        }
        for i in 0..(m - warmup) {
            order.push(fwd[s as usize][warmup + i].unwrap());
            order.push(bwd[s as usize][i].unwrap());
        }
        for b in bwd[s as usize].iter().take(m).skip(m - warmup) {
            order.push(b.unwrap());
        }
        for w in order.windows(2) {
            g.add_dep(w[1].first, w[0].last);
        }
        // DP gradient synchronization: with overlap it launches alongside
        // the final backward group (bucketed grad reduce); without, it
        // waits for the backward to finish.
        let tail = order.last().unwrap();
        let anchor = if par.overlap_grad_sync {
            tail.first
        } else {
            tail.last
        };
        emit_dp_sync(&mut g, model, par, s, anchor);
    }

    debug_assert_eq!(g.validate(), Ok(()));
    Ok(g)
}

/// Build the operator graph of one inference step (single pipeline, `tp`
/// from `par`; `batch` sequences).
///
/// Panics on invalid configs; [`try_build_inference`] is the fallible
/// variant.
pub fn build_inference(
    model: &ModelConfig,
    par: &ParallelismConfig,
    batch: u64,
    phase: InferencePhase,
) -> OperatorGraph {
    try_build_inference(model, par, batch, phase).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_inference`].
pub fn try_build_inference(
    model: &ModelConfig,
    par: &ParallelismConfig,
    batch: u64,
    phase: InferencePhase,
) -> Result<OperatorGraph, BuildError> {
    check_configs(model, par)?;
    let mut g = OperatorGraph::new(par.pp);
    let mut prev_send: Option<OpId> = None;
    for s in 0..par.pp {
        let ends = emit_inference_stage(&mut g, model, par, s, batch, phase);
        if let (Some(r), Some(snd)) = (ends.recv, prev_send) {
            g.add_dep(r, snd);
        }
        prev_send = ends.send;
    }
    debug_assert_eq!(g.validate(), Ok(()));
    Ok(g)
}

// ---------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------

/// Activation bytes crossing a pipeline boundary (one microbatch). The
/// boundary tensor is sharded across the TP group (sequence parallelism),
/// matching the paper's Eq. 5: `T_pp = b·s·h·f / tp / net_bw`.
fn act_bytes(model: &ModelConfig, par: &ParallelismConfig, tokens: u64) -> u64 {
    tokens * model.hidden * model.dtype_bytes as u64 / par.tp as u64
}

fn emit_forward(
    g: &mut OperatorGraph,
    model: &ModelConfig,
    par: &ParallelismConfig,
    s: u32,
    k: usize,
) -> GroupEnds {
    let tokens = par.micro_batch_size as u64 * model.seq_len;
    let tag = format!("@s{s}.mb{k}.fwd");
    emit_pass(
        g,
        model,
        par,
        s,
        &tag,
        tokens,
        model.seq_len,
        PassKind::Forward,
    )
}

fn emit_backward(
    g: &mut OperatorGraph,
    model: &ModelConfig,
    par: &ParallelismConfig,
    s: u32,
    k: usize,
) -> GroupEnds {
    let tokens = par.micro_batch_size as u64 * model.seq_len;
    let tag = format!("@s{s}.mb{k}.bwd");
    emit_pass(
        g,
        model,
        par,
        s,
        &tag,
        tokens,
        model.seq_len,
        PassKind::Backward,
    )
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    Forward,
    Backward,
    Inference,
}

/// Emit one pass over the stage's layers as a linear chain. Returns the
/// group's bracketing ops.
#[allow(clippy::too_many_arguments)]
fn emit_pass(
    g: &mut OperatorGraph,
    model: &ModelConfig,
    par: &ParallelismConfig,
    s: u32,
    tag: &str,
    tokens: u64,
    attn_ctx: u64,
    pass: PassKind,
) -> GroupEnds {
    let pp = par.pp;
    let tp = par.tp as u64;
    let dt = model.dtype_bytes as u64;
    let h = model.hidden;
    let layers_per_stage = (model.layers / pp) as usize;
    // Backward flops are ~2× forward (input grads + weight grads).
    let fmul = if pass == PassKind::Backward { 2.0 } else { 1.0 };
    // PP boundary tensors are TP-sharded (Eq. 5); TP collectives move the
    // full activation (Eq. 4).
    let boundary = act_bytes(model, par, tokens);
    let tp_bytes = tokens * h * dt;

    let mut state = ChainState {
        chain: None,
        first: None,
        device: s,
    };
    let mut push =
        |g: &mut OperatorGraph, name: String, kind: OpKind| -> OpId { state.push(g, name, kind) };

    // Boundary receive.
    let needs_recv = match pass {
        PassKind::Forward | PassKind::Inference => s > 0,
        PassKind::Backward => s + 1 < pp,
    };
    let logit_flops = |t: u64| t as f64 * 2.0 * h as f64 * model.vocab as f64 / tp as f64;
    let recv = needs_recv.then(|| {
        push(
            g,
            format!("PPRecv{tag}"),
            OpKind::Comm {
                coll: Collective::Recv,
                group: GroupKind::Pp,
                group_size: 2,
                bytes: boundary,
            },
        )
    });

    // Backward starts at the loss: the last stage differentiates the
    // logit projection first.
    if s == pp - 1 && pass == PassKind::Backward {
        push(
            g,
            format!("BwdLogit{tag}"),
            OpKind::Fused {
                flops: 2.0 * logit_flops(tokens),
                bytes: h * model.vocab * dt / tp,
            },
        );
    }

    // Embedding on the first stage (forward/inference only).
    if s == 0 && pass != PassKind::Backward {
        push(
            g,
            format!("LoadWeight{tag}"),
            OpKind::Memory {
                bytes: model.embedding_params() * dt / tp,
            },
        );
        push(
            g,
            format!("EmbeddingComputation{tag}"),
            OpKind::Compute {
                flops: tokens as f64 * h as f64,
            },
        );
    }

    for l in 0..layers_per_stage {
        let ltag = format!("{tag}.L{l}");
        // ZeRO-3 gathers the layer's parameter shard before using it.
        if par.zero == DpSync::Zero3 && pass != PassKind::Inference && par.dp > 1 {
            push(
                g,
                format!("Zero3ParamAllGather{ltag}"),
                OpKind::Comm {
                    coll: Collective::AllGather,
                    group: GroupKind::Dp,
                    group_size: par.dp,
                    bytes: stage_sync_params(model, par, s) * dt / (model.layers / pp) as u64,
                },
            );
        }

        match pass {
            PassKind::Forward | PassKind::Inference => {
                emit_layer_forward(g, model, par, tokens, attn_ctx, &ltag, &mut push, pass);
            }
            PassKind::Backward => {
                let f = model.fwd_flops_per_token_layer(attn_ctx) / tp as f64;
                let wbytes = model.active_params_per_layer() * dt / tp;
                push(
                    g,
                    format!("BwdAttn{ltag}"),
                    OpKind::Fused {
                        flops: fmul * f * 0.4 * tokens as f64,
                        bytes: wbytes / 2,
                    },
                );
                if par.tp > 1 {
                    push(
                        g,
                        format!("BwdAttnTPAllReduce{ltag}"),
                        OpKind::Comm {
                            coll: Collective::AllReduce,
                            group: GroupKind::Tp,
                            group_size: par.tp,
                            bytes: tp_bytes,
                        },
                    );
                }
                if let Some(moe) = model.moe {
                    if par.ep > 1 {
                        push(
                            g,
                            format!("BwdEPCombineAllToAll{ltag}"),
                            OpKind::Comm {
                                coll: Collective::AllToAll,
                                group: GroupKind::Ep,
                                group_size: par.ep,
                                bytes: tokens * moe.top_k as u64 * h * dt / tp,
                            },
                        );
                    }
                }
                push(
                    g,
                    format!("BwdMLP{ltag}"),
                    OpKind::Fused {
                        flops: fmul * f * 0.6 * tokens as f64,
                        bytes: wbytes / 2,
                    },
                );
                if let Some(moe) = model.moe {
                    if par.ep > 1 {
                        push(
                            g,
                            format!("BwdEPDispatchAllToAll{ltag}"),
                            OpKind::Comm {
                                coll: Collective::AllToAll,
                                group: GroupKind::Ep,
                                group_size: par.ep,
                                bytes: tokens * moe.top_k as u64 * h * dt / tp,
                            },
                        );
                    }
                }
                if par.tp > 1 {
                    push(
                        g,
                        format!("BwdMLPTPAllReduce{ltag}"),
                        OpKind::Comm {
                            coll: Collective::AllReduce,
                            group: GroupKind::Tp,
                            group_size: par.tp,
                            bytes: tp_bytes,
                        },
                    );
                }
            }
        }
    }

    // Logit on the last stage (forward/inference only); the embedding
    // gradient write closes the backward pass on stage 0.
    if s == pp - 1 && pass != PassKind::Backward {
        push(
            g,
            format!("Logit{tag}"),
            OpKind::Fused {
                flops: logit_flops(tokens),
                bytes: h * model.vocab * dt / tp,
            },
        );
    }
    if s == 0 && pass == PassKind::Backward {
        push(
            g,
            format!("BwdEmbeddingGrad{tag}"),
            OpKind::Memory {
                bytes: tokens * h * dt,
            },
        );
    }

    // Boundary send. The send is asynchronous: it depends on the group's
    // last compute op, but the next group chains off the compute op, not
    // the send (Megatron issues isend and moves on).
    let last_compute = state.chain.expect("pass emitted no ops");
    let mut push =
        |g: &mut OperatorGraph, name: String, kind: OpKind| -> OpId { state.push(g, name, kind) };
    let needs_send = match pass {
        PassKind::Forward | PassKind::Inference => s + 1 < pp,
        PassKind::Backward => s > 0,
    };
    let send = needs_send.then(|| {
        push(
            g,
            format!("PPSend{tag}"),
            OpKind::Comm {
                coll: Collective::Send,
                group: GroupKind::Pp,
                group_size: 2,
                bytes: boundary,
            },
        )
    });

    GroupEnds {
        first: state.first.expect("pass emitted no ops"),
        last: last_compute,
        send,
        recv,
    }
}

/// Linear-chain emission state shared by the pass emitters.
struct ChainState {
    chain: Option<OpId>,
    first: Option<OpId>,
    device: u32,
}

impl ChainState {
    fn push(&mut self, g: &mut OperatorGraph, name: String, kind: OpKind) -> OpId {
        let deps = self.chain.map(|c| vec![c]).unwrap_or_default();
        let id = g.push(name, self.device, kind, deps);
        self.chain = Some(id);
        if self.first.is_none() {
            self.first = Some(id);
        }
        id
    }
}

/// Emit the Table-1 forward operators of one transformer layer.
#[allow(clippy::too_many_arguments)]
fn emit_layer_forward(
    g: &mut OperatorGraph,
    model: &ModelConfig,
    par: &ParallelismConfig,
    tokens: u64,
    attn_ctx: u64,
    ltag: &str,
    push: &mut impl FnMut(&mut OperatorGraph, String, OpKind) -> OpId,
    pass: PassKind,
) {
    let tp = par.tp as u64;
    let dt = model.dtype_bytes as u64;
    let h = model.hidden;
    let kv = model.kv_dim();
    let boundary = tokens * h * dt;

    push(
        g,
        format!("RMSNormLoadWeight{ltag}"),
        OpKind::Memory { bytes: h * dt },
    );
    push(
        g,
        format!("RMSNormComputation{ltag}"),
        OpKind::Compute {
            flops: 4.0 * tokens as f64 * h as f64,
        },
    );
    push(
        g,
        format!("GQAQKVLoadWeight{ltag}"),
        OpKind::Memory {
            bytes: h * (h + 2 * kv) * dt / tp,
        },
    );
    push(
        g,
        format!("GQAQKVComputation{ltag}"),
        OpKind::Compute {
            flops: tokens as f64 * 2.0 * (h * (h + 2 * kv)) as f64 / tp as f64,
        },
    );
    if pass == PassKind::Inference && attn_ctx > tokens {
        // Decode reads the KV cache from HBM — the memory-bound core.
        push(
            g,
            format!("KVCacheLoad{ltag}"),
            OpKind::Memory {
                bytes: tokens * 2 * attn_ctx * kv * dt / tp,
            },
        );
    }
    push(
        g,
        format!("GQACoreAttn{ltag}"),
        OpKind::Compute {
            flops: tokens as f64 * 4.0 * attn_ctx as f64 * h as f64 / tp as f64,
        },
    );
    push(
        g,
        format!("GQAAttnProjLoadWeight{ltag}"),
        OpKind::Memory {
            bytes: h * h * dt / tp,
        },
    );
    push(
        g,
        format!("GQAAttnProjComputation{ltag}"),
        OpKind::Compute {
            flops: tokens as f64 * 2.0 * (h * h) as f64 / tp as f64,
        },
    );
    if par.tp > 1 {
        push(
            g,
            format!("AttnTPAllReduce{ltag}"),
            OpKind::Comm {
                coll: Collective::AllReduce,
                group: GroupKind::Tp,
                group_size: par.tp,
                bytes: boundary,
            },
        );
    }

    match model.moe {
        None => {
            let ffn = model.ffn_hidden;
            let names: &[&str] = if model.gated_ffn {
                &["SwiMLPUpProj", "SwiMLPGateProj", "SwiMLPDownProj"]
            } else {
                &["MLPUpProj", "MLPDownProj"]
            };
            for name in names {
                push(
                    g,
                    format!("{name}{ltag}"),
                    OpKind::Fused {
                        flops: tokens as f64 * 2.0 * (h * ffn) as f64 / tp as f64,
                        bytes: h * ffn * dt / tp,
                    },
                );
            }
        }
        Some(moe) => {
            push(
                g,
                format!("MoERouter{ltag}"),
                OpKind::Compute {
                    flops: tokens as f64 * 2.0 * h as f64 * moe.experts as f64,
                },
            );
            let a2a_bytes = tokens * moe.top_k as u64 * h * dt / tp;
            if par.ep > 1 {
                push(
                    g,
                    format!("EPDispatchAllToAll{ltag}"),
                    OpKind::Comm {
                        coll: Collective::AllToAll,
                        group: GroupKind::Ep,
                        group_size: par.ep,
                        bytes: a2a_bytes,
                    },
                );
            }
            push(
                g,
                format!("ExpertFFN{ltag}"),
                OpKind::Fused {
                    flops: tokens as f64
                        * moe.top_k as f64
                        * 2.0
                        * model.ffn_matrices() as f64
                        * (h * moe.expert_ffn_hidden) as f64
                        / tp as f64,
                    bytes: model.ffn_matrices() * h * moe.expert_ffn_hidden * dt / tp
                        * (moe.experts as u64 / par.ep as u64).max(1),
                },
            );
            if par.ep > 1 {
                push(
                    g,
                    format!("EPCombineAllToAll{ltag}"),
                    OpKind::Comm {
                        coll: Collective::AllToAll,
                        group: GroupKind::Ep,
                        group_size: par.ep,
                        bytes: a2a_bytes,
                    },
                );
            }
        }
    }
    if par.tp > 1 {
        push(
            g,
            format!("MLPTPAllReduce{ltag}"),
            OpKind::Comm {
                coll: Collective::AllReduce,
                group: GroupKind::Tp,
                group_size: par.tp,
                bytes: boundary,
            },
        );
    }
}

/// Parameters a stage synchronizes over DP, accounting for expert sharding.
fn stage_sync_params(model: &ModelConfig, par: &ParallelismConfig, s: u32) -> u64 {
    let layers = (model.layers / par.pp) as u64;
    let dense = model.attn_params_per_layer() + 2 * model.hidden;
    let expert = model.ffn_params_per_layer() / par.ep as u64;
    let mut p = layers * (dense + expert) / par.tp as u64;
    if s == 0 || s == par.pp - 1 {
        p += model.embedding_params() / par.tp as u64;
    }
    p
}

/// Emit the end-of-iteration DP gradient synchronization.
fn emit_dp_sync(
    g: &mut OperatorGraph,
    model: &ModelConfig,
    par: &ParallelismConfig,
    s: u32,
    after: OpId,
) {
    if par.dp <= 1 {
        return;
    }
    let bytes = stage_sync_params(model, par, s) * model.dtype_bytes as u64;
    match par.zero {
        DpSync::AllReduce => {
            g.push(
                format!("DPGradAllReduce@s{s}"),
                s,
                OpKind::Comm {
                    coll: Collective::AllReduce,
                    group: GroupKind::Dp,
                    group_size: par.dp,
                    bytes,
                },
                vec![after],
            );
        }
        DpSync::Zero1 => {
            let rs = g.push(
                format!("ZeroGradReduceScatter@s{s}"),
                s,
                OpKind::Comm {
                    coll: Collective::ReduceScatter,
                    group: GroupKind::Dp,
                    group_size: par.dp,
                    bytes,
                },
                vec![after],
            );
            g.push(
                format!("ZeroParamAllGather@s{s}"),
                s,
                OpKind::Comm {
                    coll: Collective::AllGather,
                    group: GroupKind::Dp,
                    group_size: par.dp,
                    bytes,
                },
                vec![rs],
            );
        }
        DpSync::Zero3 => {
            // Per-layer AllGathers were already emitted inline; the tail is
            // the gradient ReduceScatter.
            g.push(
                format!("ZeroGradReduceScatter@s{s}"),
                s,
                OpKind::Comm {
                    coll: Collective::ReduceScatter,
                    group: GroupKind::Dp,
                    group_size: par.dp,
                    bytes,
                },
                vec![after],
            );
        }
    }
}

fn emit_inference_stage(
    g: &mut OperatorGraph,
    model: &ModelConfig,
    par: &ParallelismConfig,
    s: u32,
    batch: u64,
    phase: InferencePhase,
) -> GroupEnds {
    let (tokens, ctx) = match phase {
        InferencePhase::Prefill { prompt_len } => (batch * prompt_len, prompt_len),
        InferencePhase::Decode { context_len } => (batch, context_len),
    };
    let tag = match phase {
        InferencePhase::Prefill { .. } => format!("@s{s}.prefill"),
        InferencePhase::Decode { .. } => format!("@s{s}.decode"),
    };
    emit_pass(g, model, par, s, &tag, tokens, ctx, PassKind::Inference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_configs_come_back_as_errors() {
        let m = small_model();
        let mut par = ParallelismConfig::new(1, 3, 1);
        par.microbatches = 2;
        // 4 layers cannot split into 3 stages.
        assert_eq!(
            try_build_training_iteration(&m, &par).err(),
            Some(BuildError::LayersNotDivisible { layers: 4, pp: 3 })
        );
        assert!(matches!(
            try_build_inference(&m, &par, 8, InferencePhase::Prefill { prompt_len: 128 }),
            Err(BuildError::LayersNotDivisible { .. })
        ));
        let zero = ParallelismConfig::new(0, 1, 1);
        assert!(matches!(
            try_build_training_iteration(&m, &zero),
            Err(BuildError::InvalidParallelism(_))
        ));
    }

    fn small_model() -> ModelConfig {
        ModelConfig {
            name: "test-4l".into(),
            layers: 4,
            hidden: 1024,
            heads: 8,
            kv_heads: 2,
            ffn_hidden: 4096,
            vocab: 32000,
            seq_len: 2048,
            dtype_bytes: 2,
            gated_ffn: true,
            moe: None,
        }
    }

    #[test]
    fn training_graph_validates_and_covers_stages() {
        let m = small_model();
        let par = ParallelismConfig::new(2, 2, 2);
        let g = build_training_iteration(&m, &par);
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.devices, 2);
        for d in 0..2 {
            assert!(g.device_ops(d).count() > 0);
        }
        assert!(g.topo_order().is_some());
    }

    #[test]
    fn table1_operator_inventory_for_llama3() {
        // The LLaMA-3 dense graph must contain exactly the Table-1 operator
        // families with the right type labels.
        let m = ModelConfig::llama3_70b();
        let mut par = ParallelismConfig::new(8, 8, 1);
        par.microbatches = 8;
        let g = build_training_iteration(&m, &par);
        let inv = g.operator_inventory();
        let lookup = |n: &str| -> &'static str {
            inv.iter()
                .find(|(name, _)| name == n)
                .unwrap_or_else(|| panic!("operator {n} missing"))
                .1
        };
        assert_eq!(lookup("LoadWeight"), "Mem.");
        assert_eq!(lookup("EmbeddingComputation"), "Comp.");
        assert_eq!(lookup("PPRecv"), "Comm.");
        assert_eq!(lookup("RMSNormLoadWeight"), "Mem.");
        assert_eq!(lookup("RMSNormComputation"), "Comp.");
        assert_eq!(lookup("GQAQKVLoadWeight"), "Mem.");
        assert_eq!(lookup("GQAQKVComputation"), "Comp.");
        assert_eq!(lookup("GQACoreAttn"), "Comp.");
        assert_eq!(lookup("GQAAttnProjLoadWeight"), "Mem.");
        assert_eq!(lookup("GQAAttnProjComputation"), "Comp.");
        assert_eq!(lookup("AttnTPAllReduce"), "Comm.");
        assert_eq!(lookup("SwiMLPUpProj"), "Mem. + Comp.");
        assert_eq!(lookup("SwiMLPGateProj"), "Mem. + Comp.");
        assert_eq!(lookup("SwiMLPDownProj"), "Mem. + Comp.");
        assert_eq!(lookup("MLPTPAllReduce"), "Comm.");
        assert_eq!(lookup("PPSend"), "Comm.");
        assert_eq!(lookup("Logit"), "Mem. + Comp.");
    }

    #[test]
    fn moe_graph_contains_alltoall() {
        let m = ModelConfig::hunyuan_moe_1t();
        let mut m2 = m.clone();
        m2.layers = 4;
        let mut par = ParallelismConfig::new(2, 2, 4);
        par.ep = 4;
        let g = build_training_iteration(&m2, &par);
        let inv = g.operator_inventory();
        assert!(inv.iter().any(|(n, _)| n == "EPDispatchAllToAll"));
        assert!(inv.iter().any(|(n, _)| n == "EPCombineAllToAll"));
        assert!(inv.iter().any(|(n, _)| n == "ExpertFFN"));
    }

    #[test]
    fn dense_graph_has_no_alltoall() {
        let g = build_training_iteration(&small_model(), &ParallelismConfig::new(2, 2, 2));
        assert!(!g
            .operator_inventory()
            .iter()
            .any(|(n, _)| n.contains("AllToAll")));
    }

    #[test]
    fn zero3_adds_param_allgathers_and_more_comm() {
        let m = small_model();
        let mut base = ParallelismConfig::new(1, 2, 4);
        base.microbatches = 4;
        let g_plain = build_training_iteration(&m, &base);
        let mut z3 = base;
        z3.zero = DpSync::Zero3;
        let g_zero3 = build_training_iteration(&m, &z3);
        assert!(g_zero3
            .operator_inventory()
            .iter()
            .any(|(n, _)| n == "Zero3ParamAllGather"));
        assert!(
            g_zero3.total_comm_bytes() > 2 * g_plain.total_comm_bytes(),
            "ZeRO-3 must be much heavier: {} vs {}",
            g_zero3.total_comm_bytes(),
            g_plain.total_comm_bytes()
        );
    }

    #[test]
    fn flops_match_config_arithmetic() {
        // Graph total flops ≈ 3 × fwd flops × tokens (fwd + 2×-weighted bwd).
        let m = small_model();
        let mut par = ParallelismConfig::new(1, 1, 1);
        par.microbatches = 2;
        par.micro_batch_size = 1;
        let g = build_training_iteration(&m, &par);
        let tokens = par.global_batch() * m.seq_len;
        let expected = m.train_flops_per_token(m.seq_len) * tokens as f64;
        let got = g.total_flops();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "graph {got:.3e} vs config {expected:.3e}"
        );
    }

    #[test]
    fn pipeline_send_recv_pair_up() {
        let m = small_model();
        let mut par = ParallelismConfig::new(1, 4, 1);
        par.microbatches = 4;
        let g = build_training_iteration(&m, &par);
        let sends = g
            .ops
            .iter()
            .filter(|o| o.name.starts_with("PPSend"))
            .count();
        let recvs = g
            .ops
            .iter()
            .filter(|o| o.name.starts_with("PPRecv"))
            .count();
        assert_eq!(sends, recvs);
        // fwd: 3 boundaries × 4 mb, bwd: 3 × 4.
        assert_eq!(sends, 24);
    }

    #[test]
    fn decode_is_memory_dominated_prefill_compute_dominated() {
        let m = ModelConfig::llama3_8b();
        let par = ParallelismConfig::new(4, 1, 1);
        let prefill = build_inference(&m, &par, 8, InferencePhase::Prefill { prompt_len: 2048 });
        let decode = build_inference(&m, &par, 8, InferencePhase::Decode { context_len: 2048 });
        // Arithmetic intensity (flops/byte) collapses in decode.
        let ai_p = prefill.total_flops() / prefill.total_mem_bytes() as f64;
        let ai_d = decode.total_flops() / decode.total_mem_bytes() as f64;
        assert!(
            ai_p > 50.0 * ai_d,
            "prefill AI {ai_p:.1} vs decode AI {ai_d:.1}"
        );
    }

    #[test]
    fn microbatch_count_scales_ops_linearly() {
        let m = small_model();
        let mut p4 = ParallelismConfig::new(2, 2, 1);
        p4.microbatches = 4;
        let mut p8 = p4;
        p8.microbatches = 8;
        let g4 = build_training_iteration(&m, &p4);
        let g8 = build_training_iteration(&m, &p8);
        // DP sync ops are constant; everything else doubles.
        assert!(g8.len() > 2 * g4.len() - 8);
    }
}
