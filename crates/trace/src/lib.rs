//! # astral-trace — the shared structured event trace
//!
//! A low-overhead, replayable timeline of everything the simulation stack
//! decides: flow lifecycle and link state in `astral-net`, solver
//! recompute work, fault injections, recovery-ladder decisions and
//! substrate transitions in `astral-core`, and admission/preemption/
//! spare-claim arbitration in `astral-fleet`.
//!
//! The design constraints, in order:
//!
//! 1. **Low overhead while recording.** A record is one 40-byte POD value
//!    ([`TraceRecord`]) pushed into a fixed-capacity ring buffer
//!    ([`TraceRing`]) — no allocation, no formatting, no branching beyond
//!    the ring index. Overhead is pinned by `appc_monitor_overhead`
//!    (< 2% wall-clock on the Figure-10 recovery scenario).
//! 2. **Replayable.** Records carry raw integer payloads (ids, counts,
//!    `f64::to_bits` where a float is unavoidable), so a recorded
//!    timeline round-trips exactly: serialize to JSON-lines with
//!    [`to_jsonl`], parse back with [`parse_jsonl`], and the FNV-1a
//!    [`fingerprint`] is byte-for-byte stable across the trip and across
//!    `ASTRAL_THREADS` widths.
//! 3. **Self-describing enough to debug from.** Every record kind is a
//!    documented [`TraceKind`] with a stable numeric code and a
//!    human-readable name embedded in the JSONL output.
//!
//! Field conventions per kind are documented on [`TraceKind`]; the record
//! itself stays schema-free (`aux`/`a`/`b`/`v`/`w`) so one ring serves
//! every layer without generics or dynamic dispatch.

#![warn(missing_docs)]

use serde::Value;

/// What one trace record describes. The numeric codes are stable — they
/// appear in serialized traces and must never be reused for a different
/// meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum TraceKind {
    /// `astral-net`: a flow was injected. `a`=flow id, `b`=QP (low 32
    /// bits), `v`=payload bytes, `w`=`weight.to_bits()`.
    FlowInject = 1,
    /// `astral-net`: a flow delivered all bytes. `a`=flow id, `b`=QP,
    /// `v`=delivered bytes (truncated to u64).
    FlowComplete = 2,
    /// `astral-net`: a flow exhausted retransmissions on a dead path and
    /// raised errCQE. `a`=flow id, `b`=QP.
    FlowAbort = 3,
    /// `astral-net`: an aborted flow was re-admitted after its path was
    /// restored. `a`=flow id, `b`=QP.
    FlowRequeue = 4,
    /// `astral-net`: hard link failure (capacity → 0). `a`=link id.
    LinkFail = 5,
    /// `astral-net`: link capacity degradation. `a`=link id,
    /// `w`=`factor.to_bits()`.
    LinkDegrade = 6,
    /// `astral-net`: link restored to pristine capacity. `a`=link id.
    LinkRestore = 7,
    /// `astral-net`: one rate recompute, with [`SolverCounters`]-delta
    /// payload: `aux`=1 if any full solve ran, `a`=flows resolved (low
    /// 32), `b`=links scanned (low 32), `v`=solver events, `w`=full +
    /// incremental solves since the previous recompute record.
    ///
    /// [`SolverCounters`]: https://docs.rs/astral-net
    SolverRecompute = 8,
    /// `astral-net`: a queue pair was registered. `aux`=source port,
    /// `a`=src NIC node id, `b`=dst NIC node id, `v`=QP id.
    QpRegister = 9,
    /// `astral-core`: a scripted fault materialized. `aux`=fault-kind
    /// code, `a`=iteration, `b`=blast radius (QPs crossing the faulted
    /// element).
    FaultInject = 10,
    /// `astral-core`: one recovery-ladder / gray-verdict / substrate
    /// mitigation incident. `aux`=mitigation-action code, `a`=iteration,
    /// `b`=fault-class code, `v`=blamed links, `w`=cordoned hosts.
    LadderDecision = 11,
    /// `astral-core`: a substrate cascade manifested (cooling onset,
    /// power cap-onset, optics onset). `aux`=cascade-class code,
    /// `a`=onset iteration, `b`=job hosts in the blast radius.
    SubstrateOnset = 12,
    /// `astral-core`: the analyzer named a cause for pending substrate
    /// stress. `aux`=cause-class code, `a`=iteration, `v`=telemetry
    /// queries the drill-down issued.
    SubstrateDiagnosis = 13,
    /// `astral-core`: the DCIM force-cordoned a host (rack past critical
    /// temperature). `a`=host id, `b`=iteration.
    ForcedCordon = 14,
    /// `astral-fleet`: a job segment was admitted. `a`=job id, `b`=hosts
    /// allocated, `v`=spares granted, `w`=iterations remaining.
    Admission = 15,
    /// `astral-fleet`: a running segment was preempted by a higher
    /// class. `a`=victim job id, `b`=hosts returned.
    Preemption = 16,
    /// `astral-fleet`: spares actually consumed by a finished segment's
    /// cordon-and-replace restarts. `a`=job id, `b`=spares claimed.
    SpareClaim = 17,
}

impl TraceKind {
    /// Decode a numeric kind code; `None` for unknown codes (forward
    /// compatibility: parsers keep unknown records as raw data).
    pub fn from_code(code: u16) -> Option<TraceKind> {
        Some(match code {
            1 => TraceKind::FlowInject,
            2 => TraceKind::FlowComplete,
            3 => TraceKind::FlowAbort,
            4 => TraceKind::FlowRequeue,
            5 => TraceKind::LinkFail,
            6 => TraceKind::LinkDegrade,
            7 => TraceKind::LinkRestore,
            8 => TraceKind::SolverRecompute,
            9 => TraceKind::QpRegister,
            10 => TraceKind::FaultInject,
            11 => TraceKind::LadderDecision,
            12 => TraceKind::SubstrateOnset,
            13 => TraceKind::SubstrateDiagnosis,
            14 => TraceKind::ForcedCordon,
            15 => TraceKind::Admission,
            16 => TraceKind::Preemption,
            17 => TraceKind::SpareClaim,
            _ => return None,
        })
    }

    /// Stable lowercase name, embedded in JSONL output for readability.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FlowInject => "flow_inject",
            TraceKind::FlowComplete => "flow_complete",
            TraceKind::FlowAbort => "flow_abort",
            TraceKind::FlowRequeue => "flow_requeue",
            TraceKind::LinkFail => "link_fail",
            TraceKind::LinkDegrade => "link_degrade",
            TraceKind::LinkRestore => "link_restore",
            TraceKind::SolverRecompute => "solver_recompute",
            TraceKind::QpRegister => "qp_register",
            TraceKind::FaultInject => "fault_inject",
            TraceKind::LadderDecision => "ladder_decision",
            TraceKind::SubstrateOnset => "substrate_onset",
            TraceKind::SubstrateDiagnosis => "substrate_diagnosis",
            TraceKind::ForcedCordon => "forced_cordon",
            TraceKind::Admission => "admission",
            TraceKind::Preemption => "preemption",
            TraceKind::SpareClaim => "spare_claim",
        }
    }
}

/// One compact binary trace record: 40 bytes, `Copy`, no heap. Payload
/// field meaning is per-kind (see [`TraceKind`]); floats travel as
/// `to_bits()` so records compare and hash exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Timestamp in nanoseconds on the recording layer's clock (simulated
    /// time for net/core records, campaign wall-clock for fleet records).
    pub t_ns: u64,
    /// Numeric [`TraceKind`] code.
    pub kind: u16,
    /// Small per-kind discriminant (action/cause/class codes, ports).
    pub aux: u16,
    /// First 32-bit payload (ids, iterations).
    pub a: u32,
    /// Second 32-bit payload.
    pub b: u32,
    /// First 64-bit payload (bytes, counts, float bits).
    pub v: u64,
    /// Second 64-bit payload.
    pub w: u64,
}

impl TraceRecord {
    /// Build a record.
    pub fn new(t_ns: u64, kind: TraceKind, aux: u16, a: u32, b: u32, v: u64, w: u64) -> Self {
        TraceRecord {
            t_ns,
            kind: kind as u16,
            aux,
            a,
            b,
            v,
            w,
        }
    }

    /// The decoded kind, if the code is known.
    pub fn kind(&self) -> Option<TraceKind> {
        TraceKind::from_code(self.kind)
    }

    /// Fold this record into an FNV-1a state (field order is part of the
    /// stable trace format).
    fn fnv_fold(&self, mut h: u64) -> u64 {
        for word in [
            self.t_ns,
            self.kind as u64,
            self.aux as u64,
            self.a as u64,
            self.b as u64,
            self.v,
            self.w,
        ] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// FNV-1a offset basis (the empty-trace fingerprint).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Deterministic 64-bit FNV-1a fingerprint over a record sequence. Equal
/// fingerprints for traces of real length ⇒ identical timelines (modulo
/// hash collisions); byte-identical across serialize/parse round trips.
pub fn fingerprint(records: &[TraceRecord]) -> u64 {
    records.iter().fold(FNV_OFFSET, |h, r| r.fnv_fold(h))
}

/// [`fingerprint`] formatted as a fixed-width hex string (for report
/// metrics and CI diffs).
pub fn fingerprint_hex(records: &[TraceRecord]) -> String {
    format!("{:016x}", fingerprint(records))
}

thread_local! {
    /// Recycled ring backing stores. A traced run grows a multi-megabyte
    /// buffer; if that allocation is freed when the simulator drops, every
    /// run re-pays geometric-growth memcpys, allocator mmap/munmap traffic
    /// and fresh page faults — measurably ~10% of the fig10 scenario's wall
    /// clock. Dropping a sizable ring parks its buffer here instead, and the
    /// next ring on the same thread adopts it with its pages already warm.
    /// Bounded so worker threads cap their retained memory.
    static RING_POOL: std::cell::RefCell<Vec<Vec<TraceRecord>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// At most this many parked buffers per thread.
const RING_POOL_MAX: usize = 4;
/// Buffers below this capacity are not worth recycling.
const RING_POOL_MIN_CAP: usize = 1024;

/// Adopt a parked buffer, cleared and ready to fill.
fn ring_pool_pop() -> Option<Vec<TraceRecord>> {
    RING_POOL.with(|p| p.borrow_mut().pop()).map(|mut b| {
        b.clear();
        b
    })
}

/// Park a trace buffer for reuse by the next [`TraceRing`] on this
/// thread. Rings park their backing store automatically on drop; call
/// this for buffers that *left* a ring — e.g. a drained timeline whose
/// report is being discarded — so the allocation and its warm pages
/// survive into the next run instead of being freed and re-faulted.
/// Small buffers and overflow beyond the pool bound are simply dropped.
pub fn recycle(mut buf: Vec<TraceRecord>) {
    if buf.capacity() < RING_POOL_MIN_CAP {
        return;
    }
    buf.clear();
    RING_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < RING_POOL_MAX {
            pool.push(buf);
        }
    });
}

/// A fixed-capacity ring buffer of trace records. When full, the oldest
/// record is overwritten and `dropped` counts the loss — recording never
/// allocates after construction and never fails.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Next write position.
    head: usize,
    /// Records overwritten after the ring filled.
    dropped: u64,
}

impl Drop for TraceRing {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.buf));
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` records. Capacity 0 is a valid
    /// disabled ring: every push is counted as dropped. The backing
    /// store is adopted from [`RING_POOL`] when a prior ring on this
    /// thread left one (pages warm, no growth copies), and otherwise
    /// grows on demand — a 64 Ki-record default would touch 2.6 MB of
    /// fresh pages per construction if reserved eagerly.
    pub fn with_capacity(capacity: usize) -> Self {
        let buf = if capacity >= RING_POOL_MIN_CAP {
            ring_pool_pop().unwrap_or_default()
        } else {
            Vec::new()
        };
        TraceRing {
            buf,
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Append a record, overwriting the oldest when full. Hot path (the
    /// fill phase) is a bare `Vec::push`: `head` is not maintained while
    /// filling — it stays 0, which is exactly the oldest-record position
    /// the moment the ring fills — and there is no division anywhere (a
    /// `% cap` with a runtime divisor costs more than the 40-byte store
    /// itself); wraparound is a compare-and-reset.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else if self.cap > 0 {
            self.buf[self.head] = rec;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Convenience constructor + push. One parameter per record field —
    /// the arity *is* the schema.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record(&mut self, t_ns: u64, kind: TraceKind, aux: u16, a: u32, b: u32, v: u64, w: u64) {
        self.push(TraceRecord::new(t_ns, kind, aux, a, b, v, w));
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records lost to wraparound (or to a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.cap || self.cap == 0 {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// Drain the ring: returns the retained records oldest-first and
    /// resets the ring (capacity and drop counter preserved). In the
    /// common un-wrapped case this is a pointer swap, not a copy — the
    /// backing store moves out wholesale and the ring adopts a recycled
    /// buffer for any further recording; hand the drained `Vec` back via
    /// [`recycle`] when done with it to keep that cycle allocation-free.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        let out = if self.buf.len() < self.cap || self.cap == 0 {
            let replacement = if self.cap >= RING_POOL_MIN_CAP {
                ring_pool_pop().unwrap_or_default()
            } else {
                Vec::new()
            };
            std::mem::replace(&mut self.buf, replacement)
        } else {
            let rotated = self.to_vec();
            self.buf.clear();
            rotated
        };
        self.head = 0;
        out
    }

    /// Clear retained records and the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// Serialize records to JSON-lines: one compact object per record, with
/// the decoded kind name inlined for human readers. The numeric fields
/// alone define the format — `parse_jsonl` ignores `name`.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        let name = r.kind().map(|k| k.name()).unwrap_or("unknown");
        out.push_str(&format!(
            "{{\"t_ns\":{},\"kind\":{},\"name\":\"{}\",\"aux\":{},\"a\":{},\"b\":{},\"v\":{},\"w\":{}}}\n",
            r.t_ns, r.kind, name, r.aux, r.a, r.b, r.v, r.w
        ));
    }
    out
}

/// Why a JSONL trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a JSON-lines trace produced by [`to_jsonl`] (blank lines are
/// skipped). Inverse of serialization: `parse_jsonl(&to_jsonl(r)) == r`.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |message: String| TraceParseError {
            line: i + 1,
            message,
        };
        let value: Value =
            serde_json::from_str(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let Value::Map(pairs) = &value else {
            return Err(err("record is not an object".into()));
        };
        let field = |key: &str| -> Result<u64, TraceParseError> {
            let v = pairs
                .iter()
                .find(|(k, _)| k.as_str() == Some(key))
                .map(|(_, v)| v)
                .ok_or_else(|| err(format!("missing field {key:?}")))?;
            match v {
                Value::U64(n) => Ok(*n),
                Value::I64(n) if *n >= 0 => Ok(*n as u64),
                other => Err(err(format!("field {key:?} is not an integer: {other:?}"))),
            }
        };
        out.push(TraceRecord {
            t_ns: field("t_ns")?,
            kind: field("kind")? as u16,
            aux: field("aux")? as u16,
            a: field("a")? as u32,
            b: field("b")? as u32,
            v: field("v")?,
            w: field("w")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord::new(
            i * 10,
            TraceKind::FlowInject,
            (i % 7) as u16,
            i as u32,
            (i * 3) as u32,
            i * i,
            u64::MAX - i,
        )
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut ring = TraceRing::with_capacity(8);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let v = ring.to_vec();
        assert_eq!(v, (0..5).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts() {
        let mut ring = TraceRing::with_capacity(4);
        for i in 0..10 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.to_vec(), (6..10).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn ring_wrap_exactly_at_capacity_boundary() {
        // Filling to exactly cap keeps everything; one more drops one.
        let mut ring = TraceRing::with_capacity(3);
        for i in 0..3 {
            ring.push(rec(i));
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.to_vec(), (0..3).map(rec).collect::<Vec<_>>());
        ring.push(rec(3));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.to_vec(), (1..4).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_ring_is_a_counting_sink() {
        let mut ring = TraceRing::with_capacity(0);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 5);
        assert!(ring.take().is_empty());
    }

    #[test]
    fn take_drains_in_order_and_resets() {
        let mut ring = TraceRing::with_capacity(4);
        for i in 0..6 {
            ring.push(rec(i));
        }
        let first = ring.take();
        assert_eq!(first, (2..6).map(rec).collect::<Vec<_>>());
        assert!(ring.is_empty());
        ring.push(rec(9));
        assert_eq!(ring.take(), vec![rec(9)]);
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let records: Vec<TraceRecord> = (0..20).map(rec).collect();
        let text = to_jsonl(&records);
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed, records);
        assert_eq!(fingerprint(&parsed), fingerprint(&records));
    }

    #[test]
    fn jsonl_round_trip_extreme_values() {
        let r = TraceRecord {
            t_ns: u64::MAX,
            kind: u16::MAX,
            aux: u16::MAX,
            a: u32::MAX,
            b: u32::MAX,
            v: u64::MAX,
            w: f64::NEG_INFINITY.to_bits(),
        };
        let parsed = parse_jsonl(&to_jsonl(&[r])).expect("parses");
        assert_eq!(parsed, vec![r]);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let good = to_jsonl(&[rec(1)]);
        let text = format!("{good}not json\n");
        let e = parse_jsonl(&text).expect_err("must fail");
        assert_eq!(e.line, 2);
        let text2 = "{\"t_ns\":1}\n";
        let e2 = parse_jsonl(text2).expect_err("missing fields");
        assert!(e2.message.contains("kind"));
    }

    #[test]
    fn fingerprint_sensitive_to_every_field() {
        let base = rec(5);
        let fp = fingerprint(&[base]);
        for mutate in [
            |r: &mut TraceRecord| r.t_ns += 1,
            |r: &mut TraceRecord| r.kind += 1,
            |r: &mut TraceRecord| r.aux += 1,
            |r: &mut TraceRecord| r.a += 1,
            |r: &mut TraceRecord| r.b += 1,
            |r: &mut TraceRecord| r.v += 1,
            |r: &mut TraceRecord| r.w -= 1,
        ] {
            let mut m = base;
            mutate(&mut m);
            assert_ne!(fingerprint(&[m]), fp);
        }
        assert_ne!(fingerprint(&[]), fp);
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 1..=17u16 {
            let k = TraceKind::from_code(code).expect("known code");
            assert_eq!(k as u16, code);
            assert!(!k.name().is_empty());
        }
        assert_eq!(TraceKind::from_code(0), None);
        assert_eq!(TraceKind::from_code(999), None);
    }

    #[test]
    fn record_is_compact() {
        assert_eq!(std::mem::size_of::<TraceRecord>(), 40);
    }
}
