//! Property-based tests for the trace format: arbitrary record streams
//! must survive ring storage, JSONL serialization, and parsing with a
//! byte-identical fingerprint.

use astral_trace::{fingerprint, parse_jsonl, to_jsonl, TraceRecord, TraceRing};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u64>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        (any::<u32>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(t_ns, kind, aux, a, (b, v, w))| TraceRecord {
            t_ns,
            kind,
            aux,
            a,
            b,
            v,
            w,
        })
}

proptest! {
    /// serialize → parse is the identity on record streams, and the
    /// fingerprint is byte-identical across the trip.
    #[test]
    fn jsonl_round_trip_preserves_fingerprint(records in prop::collection::vec(arb_record(), 0..64)) {
        let text = to_jsonl(&records);
        let parsed = parse_jsonl(&text).expect("serialized trace must parse");
        prop_assert_eq!(&parsed, &records);
        prop_assert_eq!(fingerprint(&parsed), fingerprint(&records));
    }

    /// A ring with capacity >= stream length retains the stream exactly;
    /// a smaller ring retains exactly the newest `cap` records and counts
    /// the rest as dropped.
    #[test]
    fn ring_retains_suffix(records in prop::collection::vec(arb_record(), 0..48), cap in 0usize..24) {
        let mut ring = TraceRing::with_capacity(cap);
        for r in &records {
            ring.push(*r);
        }
        let keep = records.len().min(cap);
        let expect = &records[records.len() - keep..];
        prop_assert_eq!(ring.dropped(), (records.len() - keep) as u64);
        let got = ring.take();
        prop_assert_eq!(got.as_slice(), expect);
        prop_assert_eq!(fingerprint(&got), fingerprint(expect));
    }

    /// Fingerprints distinguish a stream from any strict prefix (order
    /// and length are load-bearing).
    #[test]
    fn fingerprint_changes_with_length(records in prop::collection::vec(arb_record(), 1..32)) {
        let full = fingerprint(&records);
        let prefix = fingerprint(&records[..records.len() - 1]);
        prop_assert_ne!(full, prefix);
    }
}
