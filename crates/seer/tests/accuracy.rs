//! End-to-end Seer accuracy against the testbed — the Figure 12 story.
//!
//! The paper's claims, restated for this reproduction:
//! * basic modeling (theoretical bandwidths) deviates from the testbed,
//!   increasingly so when communication dominates;
//! * after self-correcting calibration the deviation collapses to the
//!   few-per-mille range for dense models;
//! * MoE models calibrate less well (unpredictable expert selection /
//!   uncalibrated operators).

use astral_model::{build_training_iteration, ModelConfig, ParallelismConfig};
use astral_seer::{Calibration, GpuSpec, NetworkSpec, Seer, SeerConfig, Testbed};
use astral_topo::{build_astral, AstralParams};

fn dense_model() -> ModelConfig {
    let mut m = ModelConfig::llama3_8b();
    m.layers = 8;
    m.hidden = 2048;
    m.heads = 16;
    m.kv_heads = 4;
    m.ffn_hidden = 8192;
    m.vocab = 32000;
    m.seq_len = 2048;
    m
}

fn par() -> ParallelismConfig {
    let mut p = ParallelismConfig::new(4, 2, 4);
    p.microbatches = 4;
    p
}

fn net_matching_testbed() -> NetworkSpec {
    let mut net = NetworkSpec::astral();
    // sim_small rails: NVLink domain of 4 GPUs.
    net.hb_domain = 4;
    net.rails = 4;
    net
}

#[test]
fn calibration_collapses_the_deviation() {
    let topo = build_astral(&AstralParams::sim_small());
    let testbed = Testbed::new(&topo, GpuSpec::h100());
    let model = dense_model();
    let par = par();
    let graph = build_training_iteration(&model, &par);

    let reference = testbed.execute(&graph, &par);

    let basic = Seer::new(SeerConfig {
        gpu: GpuSpec::h100(),
        net: net_matching_testbed(),
        calibration: Calibration::ideal(),
    });
    let uncal = basic.forecast_graph(&graph, &par);

    let cal = testbed.calibrate(&par, 42);
    let calibrated = Seer::new(SeerConfig {
        gpu: GpuSpec::h100(),
        net: net_matching_testbed(),
        calibration: cal,
    });
    let cald = calibrated.forecast_graph(&graph, &par);

    let dev_uncal = uncal.deviation_vs(&reference);
    let dev_cal = cald.deviation_vs(&reference);
    println!("uncalibrated deviation: {:.2}%", dev_uncal * 100.0);
    println!("calibrated   deviation: {:.2}%", dev_cal * 100.0);

    assert!(
        dev_uncal > 0.05,
        "basic modeling should deviate >5%, got {:.2}%",
        dev_uncal * 100.0
    );
    assert!(
        dev_cal < 0.10,
        "calibrated Seer should be within 10%, got {:.2}%",
        dev_cal * 100.0
    );
    assert!(
        dev_cal < dev_uncal / 2.0,
        "calibration should at least halve the deviation ({dev_cal} vs {dev_uncal})"
    );
}

#[test]
fn forecast_runs_in_seconds_for_a_large_model() {
    // The paper's efficiency claim: ASTRA-sim took a day, SimAI hours;
    // Seer answers in seconds. Forecast a full GPT-3-175B iteration
    // (96 layers, pp=8, 16 microbatches — ~100k operators).
    let model = ModelConfig::gpt3_175b();
    let mut par = ParallelismConfig::new(8, 8, 4);
    par.microbatches = 16;
    let seer = Seer::new(SeerConfig::h100_astral_basic());
    let t0 = std::time::Instant::now();
    let f = seer.forecast_training(&model, &par);
    let wall = t0.elapsed();
    assert!(f.iteration_s > 0.0);
    assert!(
        wall.as_secs_f64() < 10.0,
        "forecast took {wall:?}, paper promises seconds"
    );
}

#[test]
fn moe_calibrates_worse_than_dense() {
    let topo = build_astral(&AstralParams::sim_small());
    let testbed = Testbed::new(&topo, GpuSpec::h100());

    let dense = dense_model();
    let mut moe = dense.clone();
    moe.name = "moe-test".into();
    moe.moe = Some(astral_model::MoeConfig {
        experts: 8,
        top_k: 2,
        expert_ffn_hidden: 8192,
    });

    let mut p = par();
    p.ep = 4;

    let run = |model: &ModelConfig| -> f64 {
        let graph = build_training_iteration(model, &p);
        let reference = testbed.execute(&graph, &p);
        let cal = testbed.calibrate(&p, 42);
        let seer = Seer::new(SeerConfig {
            gpu: GpuSpec::h100(),
            net: net_matching_testbed(),
            calibration: cal,
        });
        seer.forecast_graph(&graph, &p).deviation_vs(&reference)
    };

    let dev_dense = run(&dense);
    let dev_moe = run(&moe);
    println!("dense deviation: {:.2}%", dev_dense * 100.0);
    println!("moe   deviation: {:.2}%", dev_moe * 100.0);
    // The paper: "for MoE-based models the accuracy deviation is relatively
    // higher".
    assert!(
        dev_moe > dev_dense * 0.8,
        "expected MoE ({dev_moe}) to be no better than dense ({dev_dense})"
    );
}
