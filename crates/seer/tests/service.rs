//! Bitwise-pinning properties of the what-if service ([`SeerService`]).
//!
//! The service's contract is that caching and parallel pricing are pure
//! plumbing: for *any* sequence of what-if queries, the cached answer
//! stream must be bit-for-bit identical to pricing every query cold, and
//! identical again at every `ASTRAL_THREADS` width. These properties are
//! asserted with `f64::to_bits` equality — no tolerance, no "close
//! enough" — over proptest-randomized query sequences.

use astral_exec::Pool;
use astral_model::{ModelConfig, ParallelismConfig};
use astral_seer::{
    LinkClass, NetworkSpec, ScenarioSpec, SeerConfig, SeerService, WhatIf, WhatIfQuery,
};
use proptest::prelude::*;

/// A shallow model keeps each cold pricing cheap enough for proptest.
fn small_model() -> ModelConfig {
    let mut m = ModelConfig::llama3_8b();
    m.layers = 4;
    m.hidden = 2048;
    m.ffn_hidden = 8192;
    m.vocab = 32000;
    m.seq_len = 2048;
    m
}

fn base_spec() -> ScenarioSpec {
    ScenarioSpec {
        model: small_model(),
        par: ParallelismConfig::new(4, 2, 4),
        cfg: SeerConfig::h100_astral_basic(),
        topo_fingerprint: 0x5eed_7e57,
    }
}

/// The fixed what-if vocabulary randomized sequences draw from — one of
/// each query family the service supports, plus the baseline.
fn query_mix() -> Vec<WhatIfQuery> {
    vec![
        WhatIfQuery::baseline(),
        WhatIfQuery::one(WhatIf::ScaleDp { factor: 2 }),
        WhatIfQuery::one(WhatIf::ScaleDp { factor: 4 }),
        WhatIfQuery::one(WhatIf::SwapTopology {
            net: NetworkSpec::astral_with_hb_domain(16),
            topo_fingerprint: 0x5eed_7e57 ^ 16,
        }),
        WhatIfQuery::one(WhatIf::SetParallelism {
            tp: 2,
            pp: 2,
            dp: 8,
        }),
        WhatIfQuery::one(WhatIf::SetParallelism {
            tp: 8,
            pp: 1,
            dp: 4,
        }),
        WhatIfQuery::one(WhatIf::DegradeLinkClass {
            class: LinkClass::Nvlink,
            factor: 0.5,
        }),
        WhatIfQuery::one(WhatIf::DegradeLinkClass {
            class: LinkClass::Rail,
            factor: 0.25,
        }),
        WhatIfQuery::of(vec![
            WhatIf::ScaleDp { factor: 2 },
            WhatIf::DegradeLinkClass {
                class: LinkClass::Rail,
                factor: 0.5,
            },
        ]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any randomized query sequence, every cached answer equals the
    /// cold (uncached) forecast of the same query bitwise, and the whole
    /// answer stream is byte-identical across pool widths {1, 2, 8}.
    #[test]
    fn cached_answers_match_cold_bitwise_at_every_width(
        picks in proptest::collection::vec(0usize..9, 1..24),
        batch in 1usize..8,
    ) {
        let mix = query_mix();
        let queries: Vec<WhatIfQuery> = picks.iter().map(|&i| mix[i].clone()).collect();

        // Reference: every query priced cold, no cache involved.
        let cold_svc = SeerService::new(base_spec());
        let cold: Vec<u64> = queries
            .iter()
            .map(|q| cold_svc.forecast_uncached(q).bits_fingerprint())
            .collect();

        for threads in [1usize, 2, 8] {
            let pool = Pool::with_threads(threads);
            let mut svc = SeerService::new(base_spec());
            let mut served: Vec<u64> = Vec::with_capacity(queries.len());
            for chunk in queries.chunks(batch) {
                for answer in svc.answer_batch(&pool, chunk) {
                    served.push(answer.forecast.bits_fingerprint());
                }
            }
            prop_assert_eq!(
                &served,
                &cold,
                "width {} served answers diverged from cold forecasts",
                threads
            );
        }
    }

    /// Replaying the same sequence against a warm service is all hits and
    /// still bitwise identical to the first pass.
    #[test]
    fn warm_replay_is_all_hits_and_bitwise_stable(
        picks in proptest::collection::vec(0usize..9, 1..16),
    ) {
        let mix = query_mix();
        let queries: Vec<WhatIfQuery> = picks.iter().map(|&i| mix[i].clone()).collect();
        let pool = Pool::with_threads(2);
        let mut svc = SeerService::new(base_spec());

        let first: Vec<u64> = svc
            .answer_batch(&pool, &queries)
            .iter()
            .map(|a| a.forecast.bits_fingerprint())
            .collect();
        let before = svc.stats();
        let replay = svc.answer_batch(&pool, &queries);
        let after = svc.stats();

        let second: Vec<u64> = replay.iter().map(|a| a.forecast.bits_fingerprint()).collect();
        prop_assert_eq!(&second, &first, "warm replay diverged from first pass");
        prop_assert!(replay.iter().all(|a| a.cache_hit), "warm replay missed the cache");
        prop_assert_eq!(
            after.forecast_misses, before.forecast_misses,
            "warm replay priced a scenario again"
        );
    }
}
