//! Modular hardware and software configuration suites (paper §4.3):
//! "GPU configurations include specific GPU devices for generating the GPU
//! FLOPS, HBM size, and HBM bandwidth; Network configurations involve
//! network topology, congestion control, and load balance schemes."

use astral_model::GroupKind;
use serde::{Deserialize, Serialize};

/// A GPU device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device name.
    pub name: String,
    /// Peak dense BF16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bw: f64,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Idle power in watts.
    pub idle_w: f64,
}

impl GpuSpec {
    /// NVIDIA H100 SXM (dense BF16).
    pub fn h100() -> Self {
        GpuSpec {
            name: "H100-SXM".into(),
            peak_flops: 989e12 / 2.0,
            hbm_bw: 3.35e12,
            hbm_bytes: 80 << 30,
            tdp_w: 700.0,
            idle_w: 90.0,
        }
    }

    /// NVIDIA A100 SXM.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100-SXM".into(),
            peak_flops: 312e12,
            hbm_bw: 2.0e12,
            hbm_bytes: 80 << 30,
            tdp_w: 400.0,
            idle_w: 60.0,
        }
    }

    /// A China-market low-tier part (H20-class): high memory bandwidth,
    /// sharply reduced compute — the paper's motivation (ii).
    pub fn h20() -> Self {
        GpuSpec {
            name: "H20".into(),
            peak_flops: 148e12,
            hbm_bw: 4.0e12,
            hbm_bytes: 96 << 30,
            tdp_w: 400.0,
            idle_w: 60.0,
        }
    }

    /// NVIDIA V100 SXM (FP16).
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100-SXM".into(),
            peak_flops: 125e12,
            hbm_bw: 0.9e12,
            hbm_bytes: 32 << 30,
            tdp_w: 300.0,
            idle_w: 50.0,
        }
    }
}

/// Cross-datacenter traffic assignment: which communicator crosses the
/// long-haul segment, and what it gets there (Figure 13 / Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossDcSpec {
    /// The communicator whose traffic crosses datacenters.
    pub affected: GroupKind,
    /// Effective per-GPU bandwidth on the long haul in bits/s
    /// (= rail bandwidth / oversubscription ratio).
    pub per_gpu_bw_bps: f64,
    /// One-way long-haul latency in seconds.
    pub latency_s: f64,
}

/// The network environment Seer models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Per-GPU network injection bandwidth in bits/s (Astral: 2×200G).
    pub rail_bw_bps: f64,
    /// Per-GPU NVLink bandwidth in bits/s (unidirectional).
    pub nvlink_bw_bps: f64,
    /// GPUs per high-bandwidth (NVLink/NVSwitch) domain.
    pub hb_domain: u32,
    /// Rails (NICs/GPUs) per host — determines whether strided
    /// communicators are rail-aligned.
    pub rails: u32,
    /// Per-message latency in seconds (network α).
    pub alpha_s: f64,
    /// Per-message latency inside the HB domain.
    pub nvlink_alpha_s: f64,
    /// Optional cross-datacenter assignment.
    pub crossdc: Option<CrossDcSpec>,
}

impl NetworkSpec {
    /// The Astral fabric: 400 Gbit/s per GPU, 8-GPU HB domains.
    pub fn astral() -> Self {
        NetworkSpec {
            rail_bw_bps: 400e9,
            nvlink_bw_bps: 1800e9,
            hb_domain: 8,
            rails: 8,
            alpha_s: 12e-6,
            nvlink_alpha_s: 2e-6,
            crossdc: None,
        }
    }

    /// Astral with tier-3 style oversubscription applied to cross-rail /
    /// cross-pod traffic classes (coarse: scales DP/EP bandwidth).
    pub fn astral_with_hb_domain(hb_domain: u32) -> Self {
        NetworkSpec {
            hb_domain,
            ..NetworkSpec::astral()
        }
    }

    /// Route one communicator's traffic across datacenters with the given
    /// intra:cross oversubscription ratio and fiber distance.
    pub fn with_crossdc(mut self, affected: GroupKind, oversub: f64, distance_km: f64) -> Self {
        assert!(oversub >= 1.0);
        self.crossdc = Some(CrossDcSpec {
            affected,
            per_gpu_bw_bps: self.rail_bw_bps / oversub,
            latency_s: distance_km * 5e-6,
        });
        self
    }

    /// The bandwidth and α a communicator of `kind` sees, given how many
    /// consecutive GPUs its groups span (`span`).
    pub fn link_for(&self, kind: GroupKind, span: u32) -> (f64, f64) {
        if let Some(x) = self.crossdc {
            if x.affected == kind {
                return (x.per_gpu_bw_bps, self.alpha_s + x.latency_s);
            }
        }
        if span <= self.hb_domain {
            (self.nvlink_bw_bps, self.nvlink_alpha_s)
        } else {
            (self.rail_bw_bps, self.alpha_s)
        }
    }

    /// Blended bandwidth/α for a communicator whose members stride the GPU
    /// order by `stride`: the fraction of each rank's peers inside its
    /// NVLink domain rides NVLink; the rest rides the rail (hierarchical
    /// execution). This is what makes Figure 14's curves *progressive* in
    /// the HB-domain size rather than a cliff.
    pub fn blended_link_for(&self, kind: GroupKind, group_size: u32, stride: u32) -> (f64, f64) {
        if let Some(x) = self.crossdc {
            if x.affected == kind {
                return (x.per_gpu_bw_bps, self.alpha_s + x.latency_s);
            }
        }
        if group_size <= 1 {
            return (self.nvlink_bw_bps, self.nvlink_alpha_s);
        }
        let members = (self.hb_domain / stride.max(1)).clamp(1, group_size);
        let f = (members - 1) as f64 / (group_size - 1) as f64;
        // Serial composition: per-byte time is a mix of the two links.
        let bw = 1.0 / (f / self.nvlink_bw_bps + (1.0 - f) / self.rail_bw_bps);
        let alpha = f * self.nvlink_alpha_s + (1.0 - f) * self.alpha_s;
        (bw, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_templates_are_distinct_and_sane() {
        for g in [
            GpuSpec::h100(),
            GpuSpec::a100(),
            GpuSpec::h20(),
            GpuSpec::v100(),
        ] {
            assert!(g.peak_flops > 1e14);
            assert!(g.hbm_bw > 1e11);
            assert!(g.tdp_w > g.idle_w);
        }
        // The low-tier motivation: H20 ≈ 3.3× less compute than H100.
        assert!(GpuSpec::h100().peak_flops / GpuSpec::h20().peak_flops > 3.0);
    }

    #[test]
    fn groups_inside_hb_domain_get_nvlink() {
        let n = NetworkSpec::astral();
        let (bw, a) = n.link_for(GroupKind::Tp, 8);
        assert_eq!(bw, n.nvlink_bw_bps);
        assert_eq!(a, n.nvlink_alpha_s);
        let (bw, _) = n.link_for(GroupKind::Tp, 16);
        assert_eq!(bw, n.rail_bw_bps);
    }

    #[test]
    fn crossdc_overrides_affected_group_only() {
        let n = NetworkSpec::astral().with_crossdc(GroupKind::Dp, 8.0, 300.0);
        let (bw, a) = n.link_for(GroupKind::Dp, 1024);
        assert_eq!(bw, 400e9 / 8.0);
        assert!(a > 1e-3, "300 km must add ≥1.5 ms");
        // PP unaffected.
        let (bw, _) = n.link_for(GroupKind::Pp, 1024);
        assert_eq!(bw, 400e9);
    }

    #[test]
    fn bigger_hb_domain_swallows_bigger_groups() {
        let n8 = NetworkSpec::astral_with_hb_domain(8);
        let n64 = NetworkSpec::astral_with_hb_domain(64);
        assert_eq!(n8.link_for(GroupKind::Ep, 32).0, n8.rail_bw_bps);
        assert_eq!(n64.link_for(GroupKind::Ep, 32).0, n64.nvlink_bw_bps);
    }

    #[test]
    fn blended_bandwidth_is_progressive_in_domain_size() {
        // EP group of 16 striding by tp=8: HB domains 8/16/32/64/128 put
        // 1/2/4/8/16 members per domain.
        let bws: Vec<f64> = [8u32, 16, 32, 64, 128]
            .into_iter()
            .map(|hb| {
                NetworkSpec::astral_with_hb_domain(hb)
                    .blended_link_for(GroupKind::Ep, 16, 8)
                    .0
            })
            .collect();
        for w in bws.windows(2) {
            assert!(w[1] > w[0], "bandwidth must grow with the domain: {bws:?}");
        }
        let n = NetworkSpec::astral();
        assert_eq!(bws[0], n.rail_bw_bps);
        assert_eq!(*bws.last().unwrap(), n.nvlink_bw_bps);
    }
}
