//! Self-correcting calibration (paper §4.3, "Self-correction of modeling").
//!
//! Theoretical bandwidth over-predicts: real kernels warm up, messages pay
//! per-packet overheads, and congestion shaves throughput. Seer therefore
//! performs "a polynomial curve fit on the throughput measured from the
//! Astral infrastructure" and uses the *achieved* throughput in the basic
//! model. This module implements that loop:
//!
//! * [`EfficiencyCurve`] — a fitted polynomial `efficiency(log₂ size)` in
//!   (0, 1], clamped outside the measured domain.
//! * [`Calibration`] — the curve set Seer consults per operator class
//!   (compute / HBM / one per collective scope).
//! * [`fit_curve`] — least-squares fit from `(size, achieved/peak)` samples
//!   (measurements come from the flow-level simulator, our stand-in for the
//!   production fleet).

use astral_sim::{polyfit, Polynomial};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The algorithmic family of a collective — ring-based collectives, the
/// pairwise all-to-all, and point-to-point sends have different overhead
/// structures and therefore separate calibration curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommKind {
    /// Ring-family collectives (AllReduce, ReduceScatter, AllGather,
    /// Broadcast).
    Ring,
    /// Pairwise all-to-all.
    AllToAll,
    /// Point-to-point send/recv.
    PointToPoint,
}

/// Keys into the communication-efficiency table: what kind of communicator
/// the collective ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// Inside an NVLink domain.
    Nvlink,
    /// Same-rail network fabric.
    Rail,
    /// Cross-rail (through Core switches).
    CrossRail,
    /// Cross-datacenter long haul.
    CrossDc,
}

/// A fitted efficiency curve over `log₂(size)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyCurve {
    poly: Polynomial,
    /// Fitted domain in log₂(size); evaluation clamps into it.
    domain: (f64, f64),
}

impl EfficiencyCurve {
    /// The identity curve: efficiency 1 everywhere (uncalibrated Seer).
    pub fn ideal() -> Self {
        EfficiencyCurve {
            poly: Polynomial::new(vec![1.0]),
            domain: (0.0, 64.0),
        }
    }

    /// A constant-efficiency curve.
    pub fn constant(eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0);
        EfficiencyCurve {
            poly: Polynomial::new(vec![eff]),
            domain: (0.0, 64.0),
        }
    }

    /// Efficiency at `size` (FLOPs for compute, bytes otherwise), clamped
    /// to (0.01, 1].
    pub fn efficiency(&self, size: f64) -> f64 {
        let x = size.max(1.0).log2().clamp(self.domain.0, self.domain.1);
        self.poly.eval(x).clamp(0.01, 1.0)
    }

    /// The fitted polynomial coefficients, low-to-high — the curve's
    /// canonical content (used with [`EfficiencyCurve::domain`] by the
    /// what-if service to derive content-addressed cache digests).
    pub fn coefficients(&self) -> &[f64] {
        self.poly.coeffs()
    }

    /// The fitted `log₂(size)` domain evaluation clamps into.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }
}

/// Fit an efficiency curve from `(size, efficiency)` samples.
pub fn fit_curve(samples: &[(f64, f64)], degree: usize) -> EfficiencyCurve {
    assert!(
        samples.len() > degree,
        "need more samples than polynomial coefficients"
    );
    let xs: Vec<f64> = samples.iter().map(|&(s, _)| s.max(1.0).log2()).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, e)| e).collect();
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let poly = polyfit(&xs, &ys, degree).expect("efficiency fit failed");
    EfficiencyCurve {
        poly,
        domain: (lo, hi),
    }
}

/// Calibrated communication parameters for one (scope, collective family):
/// the measured per-step launch/latency overhead plus a bandwidth-efficiency
/// curve over message size. Separating α from the bandwidth term lets one
/// sweep generalize across group sizes — the measured time of a ring over
/// *n* ranks is `(n−1)·α̂ + volume / (bw · eff(bytes))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommCalibration {
    /// Measured per-step overhead in seconds.
    pub alpha_s: f64,
    /// Achieved fraction of nominal link bandwidth vs message size.
    pub eff: EfficiencyCurve,
}

/// The calibration Seer consults when pricing operators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// Arithmetic efficiency vs measured GPU FLOPS: `eff(log₂ flops)`.
    pub compute: EfficiencyCurve,
    /// HBM efficiency vs measured throughput: `eff(log₂ bytes)`.
    pub memory: EfficiencyCurve,
    /// Network calibration per (scope, collective family).
    pub comm: HashMap<(CommScope, CommKind), CommCalibration>,
}

impl Calibration {
    /// The uncalibrated basic model: every efficiency is 1 (theoretical
    /// bandwidth everywhere). This is the configuration the paper found to
    /// deviate by >5% when communication becomes the bottleneck.
    pub fn ideal() -> Self {
        Calibration {
            compute: EfficiencyCurve::ideal(),
            memory: EfficiencyCurve::ideal(),
            comm: HashMap::new(),
        }
    }

    /// Calibrated `(efficiency, alpha_override)` for a communication op of
    /// `bytes` on `scope`, falling back kind → scope-Ring → uncalibrated.
    pub fn comm_params(&self, scope: CommScope, kind: CommKind, bytes: u64) -> (f64, Option<f64>) {
        if let Some(c) = self.comm.get(&(scope, kind)) {
            return (c.eff.efficiency(bytes as f64), Some(c.alpha_s));
        }
        if let Some(c) = self.comm.get(&(scope, CommKind::Ring)) {
            return (c.eff.efficiency(bytes as f64), Some(c.alpha_s));
        }
        (1.0, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_curve_is_one_everywhere() {
        let c = EfficiencyCurve::ideal();
        for size in [1.0, 1e3, 1e9, 1e15] {
            assert_eq!(c.efficiency(size), 1.0);
        }
    }

    #[test]
    fn fit_recovers_a_saturating_law() {
        // eff(x) = x/(x+2^20) sampled over sizes 2^10..2^30.
        let samples: Vec<(f64, f64)> = (10..=30)
            .map(|i| {
                let s = (1u64 << i) as f64;
                (s, s / (s + (1 << 20) as f64))
            })
            .collect();
        let curve = fit_curve(&samples, 6);
        // Polynomials wiggle near the near-zero tail; accuracy is judged
        // where the curve carries signal (mid/large sizes).
        for &(s, e) in samples.iter().filter(|&&(s, _)| s >= (1 << 16) as f64) {
            let got = curve.efficiency(s);
            assert!((got - e).abs() < 0.06, "size {s}: {got} vs {e}");
        }
    }

    #[test]
    fn evaluation_clamps_outside_domain() {
        let samples: Vec<(f64, f64)> = (10..=20)
            .map(|i| ((1u64 << i) as f64, 0.5 + 0.02 * i as f64))
            .collect();
        let curve = fit_curve(&samples, 2);
        // Way outside the fitted range the polynomial could explode; the
        // clamp keeps it at the boundary value and inside (0.01, 1].
        let at_max = curve.efficiency((1u64 << 20) as f64);
        assert!((curve.efficiency(1e30) - at_max).abs() < 1e-9);
        assert!(curve.efficiency(1.0) > 0.0);
        assert!(curve.efficiency(1e30) <= 1.0);
    }

    #[test]
    fn calibration_lookup_falls_back_gracefully() {
        let mut cal = Calibration::ideal();
        assert_eq!(
            cal.comm_params(CommScope::CrossDc, CommKind::Ring, 1 << 20),
            (1.0, None)
        );
        cal.comm.insert(
            (CommScope::Rail, CommKind::Ring),
            CommCalibration {
                alpha_s: 8e-6,
                eff: EfficiencyCurve::constant(0.8),
            },
        );
        // Exact hit.
        let (e, a) = cal.comm_params(CommScope::Rail, CommKind::Ring, 1 << 20);
        assert!((e - 0.8).abs() < 1e-12);
        assert_eq!(a, Some(8e-6));
        // Kind missing → fall back to the scope's Ring parameters.
        let (e, a) = cal.comm_params(CommScope::Rail, CommKind::PointToPoint, 1 << 20);
        assert!((e - 0.8).abs() < 1e-12);
        assert_eq!(a, Some(8e-6));
    }

    #[test]
    #[should_panic(expected = "more samples")]
    fn fit_rejects_underdetermined() {
        fit_curve(&[(1024.0, 0.5)], 3);
    }
}
