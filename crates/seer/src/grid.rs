//! Parallel testbed × Seer scenario grids.
//!
//! Figure-12-style studies evaluate many (model, parallelism) points; each
//! needs a full testbed execution (flow-level collective measurements over
//! the real topology) plus two Seer forecasts. The points are independent
//! simulations, so they fan out on the [`astral_exec`] pool. Each task
//! builds its own [`Testbed`] — the measurement cache is deliberately
//! single-threaded — and every measured value is a deterministic function
//! of (topology, GPU, model, parallelism), so the grid result is
//! byte-identical at any thread count.

use crate::calibrate::Calibration;
use crate::suites::{GpuSpec, NetworkSpec};
use crate::testbed::Testbed;
use crate::timeline::Timeline;
use crate::truth::GroundTruth;
use crate::{Seer, SeerConfig};
use astral_exec::Pool;
use astral_model::{build_training_iteration, ModelConfig, ParallelismConfig};
use astral_topo::Topology;

/// One grid point: a labeled (model, parallelism) pair.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Display label for reports.
    pub label: String,
    /// Model configuration.
    pub model: ModelConfig,
    /// Parallelism layout.
    pub par: ParallelismConfig,
}

/// Outcome of one grid point: the ground-truth timeline, both forecasts,
/// and their deviations.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// The point's label.
    pub label: String,
    /// Ground-truth testbed timeline.
    pub testbed: Timeline,
    /// Uncalibrated (ideal-efficiency) forecast.
    pub basic: Timeline,
    /// Calibrated forecast.
    pub calibrated: Timeline,
    /// Deviation of the basic forecast vs the testbed, as a fraction.
    pub basic_dev: f64,
    /// Deviation of the calibrated forecast vs the testbed, as a fraction.
    pub calibrated_dev: f64,
}

/// Run a forecast-accuracy grid on the `ASTRAL_THREADS`-sized pool: for
/// every point, execute the graph on the testbed and forecast it with an
/// ideal and a calibrated Seer. Outcomes come back in point order.
pub fn run_grid(
    topo: &Topology,
    gpu: &GpuSpec,
    net: &NetworkSpec,
    cal: &Calibration,
    points: &[GridPoint],
) -> Vec<GridOutcome> {
    run_grid_with(&Pool::from_env(), topo, gpu, net, cal, points)
}

/// [`run_grid`] on an explicit pool.
///
/// The two Seers and the ground-truth laws are built **once** and shared by
/// reference across the pool closure — per point only the (deliberately
/// single-threaded) testbed measurement cache is private, seeded from the
/// shared laws.
pub fn run_grid_with(
    pool: &Pool,
    topo: &Topology,
    gpu: &GpuSpec,
    net: &NetworkSpec,
    cal: &Calibration,
    points: &[GridPoint],
) -> Vec<GridOutcome> {
    let truth = GroundTruth::for_gpu(gpu.clone());
    let basic_seer = Seer::new(SeerConfig {
        gpu: gpu.clone(),
        net: net.clone(),
        calibration: Calibration::ideal(),
    });
    let calibrated_seer = Seer::new(SeerConfig {
        gpu: gpu.clone(),
        net: net.clone(),
        calibration: cal.clone(),
    });
    pool.map(points, |pt| {
        let testbed = Testbed::with_truth(topo, truth.clone());
        let graph = build_training_iteration(&pt.model, &pt.par);
        let reference = testbed.execute(&graph, &pt.par);
        let basic = basic_seer.forecast_graph(&graph, &pt.par);
        let calibrated = calibrated_seer.forecast_graph(&graph, &pt.par);
        GridOutcome {
            label: pt.label.clone(),
            basic_dev: basic.deviation_vs(&reference),
            calibrated_dev: calibrated.deviation_vs(&reference),
            testbed: reference,
            basic,
            calibrated,
        }
    })
}
