//! # astral-seer — operator-granular LLM performance forecasting
//!
//! The reproduction of Astral Seer (paper §4): given a model, a parallelism
//! layout, and hardware/network configuration suites, Seer produces an
//! operator-granular execution timeline *within seconds*, with accuracy
//! coming from self-correcting calibration against measured throughput.
//!
//! Pipeline: `astral-model` generates the operator DAG (profiler-converted
//! or handcrafted via the Chakra-like JSON), [`ModelPricer`] prices each
//! operator (Appendix-E basic modeling × fitted efficiency curves), and the
//! [`timeline`] list scheduler replays the DAG over per-device compute and
//! communication streams.
//!
//! The crate also contains the **testbed** ([`Testbed`]): the ground-truth
//! executor (hidden hardware laws + flow-level-simulated collectives) that
//! stands in for the production fleet — Seer calibrates against its
//! measurements and is verified against its timelines (Figure 12).
//!
//! ```
//! use astral_seer::{Seer, SeerConfig};
//! use astral_model::{ModelConfig, ParallelismConfig};
//!
//! let mut model = ModelConfig::llama3_8b();
//! model.layers = 8;
//! let par = ParallelismConfig::new(4, 2, 2);
//! let seer = Seer::new(SeerConfig::h100_astral_basic());
//! let forecast = seer.forecast_training(&model, &par);
//! assert!(forecast.iteration_s > 0.0);
//! assert!(forecast.mfu > 0.0 && forecast.mfu <= 1.0);
//! ```

#![warn(missing_docs)]

mod basic;
mod calibrate;
pub mod grid;
mod hazard;
mod pricer;
pub mod service;
mod suites;
mod testbed;
pub mod timeline;
mod truth;

pub use basic::{t_addition, t_dp_comm, t_mem, t_multiplication, t_pp_comm, t_tp_comm};
pub use calibrate::{
    fit_curve, Calibration, CommCalibration, CommKind, CommScope, EfficiencyCurve,
};
pub use grid::{run_grid, run_grid_with, GridOutcome, GridPoint};
pub use hazard::HazardForecaster;
pub use pricer::{scope_of, span_of, ModelPricer, OpClass, SeerConfig};
pub use service::{
    CacheStats, CachedForecast, Digest, LinkClass, ScenarioSpec, SeerService, WhatIf, WhatIfAnswer,
    WhatIfQuery,
};
pub use suites::{CrossDcSpec, GpuSpec, NetworkSpec};
pub use testbed::Testbed;
pub use timeline::{schedule, OpPricer, Stream, Timeline, TimelineEntry};
pub use truth::GroundTruth;

use astral_model::{
    build_inference, build_training_iteration, InferencePhase, ModelConfig, ParallelismConfig,
};

/// A complete Seer forecast.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// The operator timeline.
    pub timeline: Timeline,
    /// Iteration (or inference-step) time in seconds.
    pub iteration_s: f64,
    /// Training tokens per second across the job (0 for inference).
    pub tokens_per_s: f64,
    /// Model FLOPs utilization: useful FLOPs over peak FLOPs × time × GPUs.
    pub mfu: f64,
}

/// The Seer forecasting component.
#[derive(Debug, Clone)]
pub struct Seer {
    cfg: SeerConfig,
}

impl Seer {
    /// A Seer with the given configuration suite.
    pub fn new(cfg: SeerConfig) -> Self {
        Seer { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &SeerConfig {
        &self.cfg
    }

    /// Replace the calibration (after a [`Testbed::calibrate`] run).
    pub fn with_calibration(mut self, cal: Calibration) -> Self {
        self.cfg.calibration = cal;
        self
    }

    /// Forecast a prebuilt operator graph.
    pub fn forecast_graph(
        &self,
        graph: &astral_model::OperatorGraph,
        par: &ParallelismConfig,
    ) -> Timeline {
        let pricer = ModelPricer { cfg: &self.cfg };
        schedule(graph, par, &pricer)
    }

    /// Forecast one training iteration.
    pub fn forecast_training(&self, model: &ModelConfig, par: &ParallelismConfig) -> Forecast {
        let graph = build_training_iteration(model, par);
        let timeline = self.forecast_graph(&graph, par);
        let iteration_s = timeline.total.as_secs_f64();
        let tokens = par.global_batch() * model.seq_len;
        let useful_flops = model.train_flops_per_token(model.seq_len) * tokens as f64;
        let mfu = if iteration_s > 0.0 {
            useful_flops / (self.cfg.gpu.peak_flops * par.world() as f64 * iteration_s)
        } else {
            0.0
        };
        Forecast {
            timeline,
            iteration_s,
            tokens_per_s: if iteration_s > 0.0 {
                tokens as f64 / iteration_s
            } else {
                0.0
            },
            mfu: mfu.min(1.0),
        }
    }

    /// Forecast one inference step (prefill or a decode token).
    pub fn forecast_inference(
        &self,
        model: &ModelConfig,
        par: &ParallelismConfig,
        batch: u64,
        phase: InferencePhase,
    ) -> Forecast {
        let graph = build_inference(model, par, batch, phase);
        let timeline = self.forecast_graph(&graph, par);
        let iteration_s = timeline.total.as_secs_f64();
        let tokens = match phase {
            InferencePhase::Prefill { prompt_len } => batch * prompt_len,
            InferencePhase::Decode { .. } => batch,
        };
        Forecast {
            timeline,
            iteration_s,
            tokens_per_s: if iteration_s > 0.0 {
                tokens as f64 / iteration_s
            } else {
                0.0
            },
            mfu: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> ModelConfig {
        let mut m = ModelConfig::llama3_8b();
        m.layers = 8;
        m.hidden = 2048;
        m.ffn_hidden = 8192;
        m.vocab = 32000;
        m.seq_len = 2048;
        m
    }

    #[test]
    fn forecast_is_fast_and_positive() {
        let seer = Seer::new(SeerConfig::h100_astral_basic());
        let t0 = std::time::Instant::now();
        let f = seer.forecast_training(&small_model(), &ParallelismConfig::new(4, 2, 4));
        let wall = t0.elapsed();
        assert!(f.iteration_s > 0.0);
        assert!(f.tokens_per_s > 0.0);
        // The paper's headline: forecasts within seconds (this one in well
        // under one).
        assert!(wall.as_secs_f64() < 5.0, "forecast took {wall:?}");
    }

    #[test]
    fn more_gpus_same_batch_is_faster_per_iteration() {
        let m = small_model();
        let seer = Seer::new(SeerConfig::h100_astral_basic());
        let mut small = ParallelismConfig::new(4, 2, 2);
        small.microbatches = 8;
        let mut large = ParallelismConfig::new(4, 2, 8);
        large.microbatches = 8;
        // Same per-replica work, 4× replicas → 4× global tokens at similar
        // iteration time → higher aggregate throughput.
        let fs = seer.forecast_training(&m, &small);
        let fl = seer.forecast_training(&m, &large);
        assert!(fl.tokens_per_s > 2.0 * fs.tokens_per_s);
    }

    #[test]
    fn mfu_is_reasonable_for_dense_training() {
        let seer = Seer::new(SeerConfig::h100_astral_basic());
        let mut par = ParallelismConfig::new(4, 2, 2);
        par.microbatches = 8;
        let f = seer.forecast_training(&small_model(), &par);
        // Uncalibrated basic modeling with overlap-free TP comm should
        // still land in a plausible MFU band.
        assert!(f.mfu > 0.2 && f.mfu <= 1.0, "mfu = {}", f.mfu);
    }

    #[test]
    fn calibrated_forecast_is_slower_than_ideal() {
        let m = small_model();
        let par = ParallelismConfig::new(4, 2, 2);
        let ideal = Seer::new(SeerConfig::h100_astral_basic());
        let mut cfg = SeerConfig::h100_astral_basic();
        cfg.calibration.compute = EfficiencyCurve::constant(0.5);
        cfg.calibration.memory = EfficiencyCurve::constant(0.5);
        let calibrated = Seer::new(cfg);
        let fi = ideal.forecast_training(&m, &par);
        let fc = calibrated.forecast_training(&m, &par);
        assert!(fc.iteration_s > fi.iteration_s * 1.5);
    }

    #[test]
    fn inference_decode_throughput_below_prefill() {
        let m = small_model();
        let par = ParallelismConfig::new(4, 1, 1);
        let seer = Seer::new(SeerConfig::h100_astral_basic());
        let pre =
            seer.forecast_inference(&m, &par, 8, InferencePhase::Prefill { prompt_len: 1024 });
        let dec =
            seer.forecast_inference(&m, &par, 8, InferencePhase::Decode { context_len: 1024 });
        assert!(pre.tokens_per_s > dec.tokens_per_s * 10.0);
    }
}
