//! Substrate hazard forecasting: Seer's short-horizon trend extrapolation.
//!
//! The cascade engine feeds Seer a rolling window of substrate stress
//! telemetry (rack inlet temperature, power-cap depth) and asks one
//! question: *when does this trend cross the damage threshold?* The answer
//! gates proactive mitigation — a checkpoint taken a few iterations before
//! a forced cordon is vastly cheaper than rolling back to one taken long
//! before the cascade started.
//!
//! The forecaster is deliberately simple: a linear least-squares fit
//! ([`astral_sim::polyfit`] at degree 1) over the most recent window.
//! Substrate excursions in the cascade model are first-order lags toward a
//! step target, so a short linear window tracks the rising edge well — and
//! the same self-correcting philosophy as Seer's throughput calibration
//! applies: fit measurements, don't model physics twice.

use astral_sim::polyfit;

/// A rolling-window linear-trend forecaster for one substrate stress
/// signal.
#[derive(Debug, Clone)]
pub struct HazardForecaster {
    /// The damage threshold in the signal's own units (e.g. 45 °C inlet,
    /// or 0.85 cap-fraction-deficit).
    threshold: f64,
    /// True when crossing means the signal *rises* through the threshold;
    /// false for falling signals (e.g. power cap fraction dropping).
    rising: bool,
    /// Max samples retained (older samples fall off).
    window: usize,
    /// `(iteration, value)` samples, oldest first.
    samples: Vec<(f64, f64)>,
}

impl HazardForecaster {
    /// A forecaster for a signal that *rises* into danger (temperatures).
    pub fn rising(threshold: f64, window: usize) -> Self {
        HazardForecaster {
            threshold,
            rising: true,
            window: window.max(2),
            samples: Vec::new(),
        }
    }

    /// A forecaster for a signal that *falls* into danger (power cap
    /// fraction).
    pub fn falling(threshold: f64, window: usize) -> Self {
        HazardForecaster {
            threshold,
            rising: false,
            window: window.max(2),
            samples: Vec::new(),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Record one observation at (fractional) iteration `iter`.
    pub fn observe(&mut self, iter: f64, value: f64) {
        if !iter.is_finite() || !value.is_finite() {
            return;
        }
        self.samples.push((iter, value));
        if self.samples.len() > self.window {
            let excess = self.samples.len() - self.window;
            self.samples.drain(..excess);
        }
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Forget all samples (call after a mitigation resets the substrate).
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Predicted iteration at which the fitted trend crosses the
    /// threshold, or `None` when the trend is flat/receding or the window
    /// is too short to fit. A signal already past the threshold returns
    /// the latest sample's iteration.
    pub fn predicted_crossing(&self) -> Option<f64> {
        let (last_iter, last_val) = *self.samples.last()?;
        let past = if self.rising {
            last_val >= self.threshold
        } else {
            last_val <= self.threshold
        };
        if past {
            return Some(last_iter);
        }
        if self.samples.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = self.samples.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = self.samples.iter().map(|&(_, y)| y).collect();
        let line = polyfit(&xs, &ys, 1).ok()?;
        let slope = line.coeffs()[1];
        let toward_danger = if self.rising {
            slope > 1e-12
        } else {
            slope < -1e-12
        };
        if !toward_danger {
            return None;
        }
        let cross = (self.threshold - line.coeffs()[0]) / slope;
        (cross.is_finite() && cross >= last_iter).then_some(cross)
    }

    /// True when the predicted crossing falls within `lead` iterations of
    /// the latest sample — the "act now" signal for proactive mitigation.
    pub fn imminent(&self, lead: f64) -> bool {
        match (self.predicted_crossing(), self.samples.last()) {
            (Some(cross), Some(&(last_iter, _))) => cross - last_iter <= lead,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_trend_predicts_the_crossing_iteration() {
        // temp = 22 + 2·iter crosses 45 °C at iter 11.5.
        let mut f = HazardForecaster::rising(45.0, 8);
        for it in 0..6 {
            f.observe(it as f64, 22.0 + 2.0 * it as f64);
        }
        let cross = f.predicted_crossing().expect("trend rises");
        assert!((cross - 11.5).abs() < 1e-6, "crossing at {cross}");
        assert!(!f.imminent(3.0));
        assert!(f.imminent(7.0));
    }

    #[test]
    fn flat_or_cooling_trend_is_no_hazard() {
        let mut f = HazardForecaster::rising(45.0, 8);
        for it in 0..6 {
            f.observe(it as f64, 30.0 - 0.5 * it as f64);
        }
        assert_eq!(f.predicted_crossing(), None);
        assert!(!f.imminent(1e9));
    }

    #[test]
    fn falling_signal_crosses_downward() {
        // cap = 1.0 − 0.05·iter crosses 0.8 at iter 4.
        let mut f = HazardForecaster::falling(0.8, 8);
        for it in 0..3 {
            f.observe(it as f64, 1.0 - 0.05 * it as f64);
        }
        let cross = f.predicted_crossing().expect("cap falls");
        assert!((cross - 4.0).abs() < 1e-6, "crossing at {cross}");
    }

    #[test]
    fn already_past_threshold_reports_now() {
        let mut f = HazardForecaster::rising(45.0, 8);
        f.observe(10.0, 50.0);
        assert_eq!(f.predicted_crossing(), Some(10.0));
        assert!(f.imminent(0.0));
    }

    #[test]
    fn window_slides_and_reset_clears() {
        let mut f = HazardForecaster::rising(45.0, 4);
        // A long cold history followed by a hot ramp: only the window
        // (last 4 samples, all ramping) should drive the fit.
        for it in 0..20 {
            f.observe(it as f64, 22.0);
        }
        for it in 20..24 {
            f.observe(it as f64, 22.0 + 3.0 * (it - 19) as f64);
        }
        assert_eq!(f.len(), 4);
        assert!(f.predicted_crossing().is_some(), "ramp dominates window");
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.predicted_crossing(), None);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut f = HazardForecaster::rising(45.0, 8);
        f.observe(f64::NAN, 30.0);
        f.observe(0.0, f64::INFINITY);
        assert!(f.is_empty());
    }
}
