//! The simulated testbed: ground truth for Seer to calibrate against and
//! be verified against.
//!
//! The paper verifies Seer against production runs (Figure 12). Our
//! production stand-in executes the same operator graph with
//! *ground-truth* pricing: compute/memory operators use the hidden hardware
//! laws of [`GroundTruth`], and communication operators are **measured on
//! the flow-level network simulator** — actual collective schedules run
//! over the actual topology with ECMP, contention, and NVLink domains.
//! The testbed also produces the profiling samples Seer's self-correction
//! fits its polynomial efficiency curves to.

use crate::calibrate::{fit_curve, Calibration, CommCalibration, CommKind, CommScope};
use crate::suites::GpuSpec;
use crate::timeline::{schedule, OpPricer, Timeline};
use crate::truth::GroundTruth;
use astral_collectives::{CollectiveRunner, RunnerConfig};
use astral_model::{Collective, GroupKind, OpKind, Operator, OperatorGraph, ParallelismConfig};
use astral_sim::SimRng;
use astral_topo::{GpuId, Topology};
use std::cell::RefCell;
use std::collections::HashMap;

/// Key for the collective-measurement cache.
type CommKey = (Collective, GroupKind, u32, u64);

/// The testbed: a topology plus ground-truth laws.
pub struct Testbed<'a> {
    topo: &'a Topology,
    truth: GroundTruth,
    runner_cfg: RunnerConfig,
    /// Rank → GPU mapping; identity (rank r → GPU r) by default.
    placement: Option<Vec<GpuId>>,
    comm_cache: RefCell<HashMap<CommKey, f64>>,
}

impl<'a> Testbed<'a> {
    /// A testbed of `gpu` devices attached to `topo`.
    pub fn new(topo: &'a Topology, gpu: GpuSpec) -> Self {
        Testbed {
            topo,
            truth: GroundTruth::for_gpu(gpu),
            runner_cfg: RunnerConfig::default(),
            placement: None,
            comm_cache: RefCell::new(HashMap::new()),
        }
    }

    /// A testbed over pre-built ground-truth laws. Lets grid fan-out share
    /// one [`GroundTruth`] across pool tasks instead of re-deriving it per
    /// point.
    pub fn with_truth(topo: &'a Topology, truth: GroundTruth) -> Self {
        Testbed {
            topo,
            truth,
            runner_cfg: RunnerConfig::default(),
            placement: None,
            comm_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Use an explicit rank → GPU placement (e.g. a fragmented cross-pod
    /// allocation) instead of the default contiguous one.
    pub fn with_placement(mut self, placement: Vec<GpuId>) -> Self {
        self.placement = Some(placement);
        self
    }

    /// The ground-truth laws (tests and figure harnesses may inspect them;
    /// Seer itself must not).
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Representative GPU group for a communicator of `kind`/`size` under
    /// contiguous placement (rank *r* → GPU *r*).
    pub fn group_gpus(&self, par: &ParallelismConfig, kind: GroupKind, size: u32) -> Vec<GpuId> {
        if let Some(map) = &self.placement {
            assert!(
                map.len() as u32 >= par.world(),
                "placement covers {} ranks but the job has {}",
                map.len(),
                par.world()
            );
        } else {
            assert!(
                par.world() <= self.topo.gpu_count(),
                "job of {} GPUs does not fit the {}-GPU testbed",
                par.world(),
                self.topo.gpu_count()
            );
        }
        let ranks: Vec<u32> = match kind {
            GroupKind::Tp => (0..size).collect(),
            GroupKind::Dp | GroupKind::Ep => (0..size).map(|d| d * par.tp).collect(),
            GroupKind::Pp => (0..size).map(|p| p * par.tp * par.dp).collect(),
        };
        match &self.placement {
            None => ranks.into_iter().map(GpuId).collect(),
            Some(map) => ranks
                .into_iter()
                .map(|r| {
                    *map.get(r as usize)
                        .expect("placement must cover every rank")
                })
                .collect(),
        }
    }

    /// The calibration scope a concrete GPU group lives in.
    pub fn scope_of_group(&self, gpus: &[GpuId]) -> CommScope {
        let first_dc = self.topo.host(self.topo.gpu_host(gpus[0])).dc;
        let crosses_dc = gpus
            .iter()
            .any(|&g| self.topo.host(self.topo.gpu_host(g)).dc != first_dc);
        if crosses_dc {
            return CommScope::CrossDc;
        }
        let in_one_domain = gpus.iter().all(|&g| self.topo.same_hb_domain(g, gpus[0]));
        if in_one_domain {
            return CommScope::Nvlink;
        }
        let rail0 = self.topo.gpu_rail(gpus[0]);
        if gpus.iter().all(|&g| self.topo.gpu_rail(g) == rail0) {
            CommScope::Rail
        } else {
            CommScope::CrossRail
        }
    }

    /// Measure one collective on the flow-level simulator (cached), with
    /// the protocol-efficiency law applied on top of the fluid result.
    pub fn measure_collective(
        &self,
        par: &ParallelismConfig,
        coll: Collective,
        kind: GroupKind,
        group_size: u32,
        bytes: u64,
    ) -> f64 {
        let key = (coll, kind, group_size, bytes);
        if let Some(&d) = self.comm_cache.borrow().get(&key) {
            return d;
        }
        let gpus = self.group_gpus(par, kind, group_size);
        let scope = self.scope_of_group(&gpus);
        let mut runner = CollectiveRunner::new(self.topo, self.runner_cfg);
        let fluid = match coll {
            Collective::AllReduce => runner.all_reduce(&gpus, bytes),
            Collective::ReduceScatter => runner.reduce_scatter(&gpus, bytes),
            Collective::AllGather => runner.all_gather(&gpus, bytes),
            Collective::AllToAll => runner.all_to_all(&gpus, bytes),
            Collective::Broadcast => runner.broadcast(&gpus, bytes),
            Collective::Send => runner.send(gpus[0], gpus[1 % gpus.len()], bytes),
            Collective::Recv => {
                let d = self.runner_cfg.step_overhead.as_secs_f64();
                self.comm_cache.borrow_mut().insert(key, d);
                return d;
            }
        };
        // The protocol-efficiency law taxes the wire time only; per-step
        // launch overheads are already real time, not lost bandwidth.
        let steps = fluid.step_durations.len() as f64;
        let overhead = steps * self.runner_cfg.step_overhead.as_secs_f64();
        let wire = (fluid.duration.as_secs_f64() - overhead).max(0.0);
        let secs = overhead + wire / self.truth.comm_protocol_eff(scope, bytes as f64);
        self.comm_cache.borrow_mut().insert(key, secs);
        secs
    }

    /// Execute a graph end to end with ground-truth pricing, producing the
    /// "production" timeline Seer is verified against.
    pub fn execute(&self, graph: &OperatorGraph, par: &ParallelismConfig) -> Timeline {
        let pricer = TruthPricer { testbed: self };
        schedule(graph, par, &pricer)
    }

    /// Run the self-correction measurement campaign (paper §4.3): noisy
    /// compute/HBM microbenchmarks plus collective sweeps on the flow
    /// simulator, fitted into polynomial efficiency curves.
    pub fn calibrate(&self, par: &ParallelismConfig, seed: u64) -> Calibration {
        let mut rng = SimRng::new(seed);

        // Arithmetic: sample kernels from 2^24 to 2^38 FLOPs.
        let compute_samples: Vec<(f64, f64)> = (24..=38)
            .map(|i| {
                let flops = (1u64 << i) as f64;
                (flops, self.truth.measure_compute_eff(flops, &mut rng))
            })
            .collect();
        // HBM: streams from 64 KiB to 16 GiB.
        let memory_samples: Vec<(f64, f64)> = (16..=34)
            .map(|i| {
                let bytes = (1u64 << i) as f64;
                (bytes, self.truth.measure_memory_eff(bytes, &mut rng))
            })
            .collect();

        // Network: sweep each (scope, collective family) the pricer will
        // consult and compare measured durations against the α–β ideal to
        // get achieved-bandwidth fractions.
        let mut comm = HashMap::new();
        let hb = self.topo.hb_domain().gpus_per_domain.min(par.world());
        let rails = self.topo.rails() as u32;
        let sweeps: Vec<(CommScope, CommKind, Collective, GroupKind, u32)> = vec![
            (
                CommScope::Nvlink,
                CommKind::Ring,
                Collective::AllReduce,
                GroupKind::Tp,
                hb.max(2),
            ),
            (
                CommScope::Rail,
                CommKind::Ring,
                Collective::AllReduce,
                GroupKind::Dp,
                8.min(par.dp.max(2)),
            ),
            (
                CommScope::Rail,
                CommKind::PointToPoint,
                Collective::Send,
                GroupKind::Pp,
                2,
            ),
            (
                CommScope::CrossRail,
                CommKind::AllToAll,
                Collective::AllToAll,
                GroupKind::Tp,
                (2 * rails).min(par.world()),
            ),
            (
                CommScope::Rail,
                CommKind::AllToAll,
                Collective::AllToAll,
                GroupKind::Dp,
                8.min(par.dp.max(2)),
            ),
        ];
        for (scope, ckind, coll, gkind, size) in sweeps {
            if size < 2 {
                continue;
            }
            let gpus = self.group_gpus(par, gkind, size);
            if self.scope_of_group(&gpus) != scope {
                continue;
            }
            let n = size as usize;
            // Steps and per-rank wire volume factor of the swept collective.
            let (steps, vol_factor) = match coll {
                Collective::AllReduce => (2.0 * (n - 1) as f64, 2.0 * (n - 1) as f64 / n as f64),
                Collective::AllToAll => ((n - 1) as f64, (n - 1) as f64 / n as f64),
                Collective::Send => (1.0, 1.0),
                _ => unreachable!("calibration sweeps are fixed above"),
            };
            let bw = match scope {
                CommScope::Nvlink => self.topo.hb_domain().bandwidth_bps,
                _ => 400e9,
            };

            // Measure, then split α from the bandwidth term: the smallest
            // sizes are overhead-dominated, so α̂ comes from a least-squares
            // intercept of measured-time vs wire volume.
            let mut pts: Vec<(f64, f64)> = Vec::new(); // (wire_bits, secs)
            for i in 16..=28 {
                let bytes = 1u64 << i;
                let measured = self.measure_collective(par, coll, gkind, size, bytes);
                pts.push((vol_factor * bytes as f64 * 8.0, measured));
            }
            // α̂ from the smallest (overhead-dominated) sample, after
            // subtracting its (near-negligible) ideal wire time.
            let (min_wire_bits, min_secs) = pts[0];
            let alpha_s = ((min_secs - min_wire_bits / bw) / steps).max(0.0);

            // Residual bandwidth efficiency after removing the overhead;
            // overhead-dominated samples carry no bandwidth signal, so only
            // sizes where the wire term is substantial enter the fit.
            let samples: Vec<(f64, f64)> = pts
                .iter()
                .enumerate()
                .filter_map(|(k, &(wire_bits, secs))| {
                    let bytes = 1u64 << (16 + k);
                    let wire_secs = secs - steps * alpha_s;
                    if wire_secs < 0.25 * secs {
                        return None;
                    }
                    let eff = (wire_bits / bw / wire_secs).clamp(0.01, 1.0);
                    Some((bytes as f64, eff))
                })
                .collect();
            if samples.len() < 5 {
                continue;
            }
            comm.insert(
                (scope, ckind),
                CommCalibration {
                    alpha_s,
                    eff: fit_curve(&samples, 4),
                },
            );
        }
        // Scopes without a measurable group keep a conservative prior.
        let mut cal = Calibration {
            compute: fit_curve(&compute_samples, 5),
            memory: fit_curve(&memory_samples, 5),
            comm,
        };
        for scope in [
            CommScope::Nvlink,
            CommScope::Rail,
            CommScope::CrossRail,
            CommScope::CrossDc,
        ] {
            cal.comm
                .entry((scope, CommKind::Ring))
                .or_insert_with(|| CommCalibration {
                    alpha_s: 10e-6,
                    eff: crate::calibrate::EfficiencyCurve::constant(0.75),
                });
        }
        cal
    }
}

/// Ground-truth pricer used by [`Testbed::execute`].
struct TruthPricer<'b, 'a> {
    testbed: &'b Testbed<'a>,
}

impl OpPricer for TruthPricer<'_, '_> {
    fn duration(&self, op: &Operator, par: &ParallelismConfig) -> f64 {
        let truth = &self.testbed.truth;
        // Expert-parallel operators suffer the routing-imbalance straggler
        // factor Seer cannot model (paper §4.3: MoE deviation is higher
        // "due to unpredictable expert selection").
        let imbalance = if op.name.starts_with("ExpertFFN")
            || (matches!(
                op.kind,
                OpKind::Comm {
                    group: astral_model::GroupKind::Ep,
                    ..
                }
            )) {
            truth.moe_imbalance
        } else {
            1.0
        };
        imbalance
            * match op.kind {
                OpKind::Compute { flops } => truth.compute_secs(flops),
                OpKind::Memory { bytes } => truth.memory_secs(bytes as f64),
                OpKind::Fused { flops, bytes } => truth
                    .compute_secs(flops)
                    .max(truth.memory_secs(bytes as f64)),
                OpKind::Comm {
                    coll,
                    group,
                    group_size,
                    bytes,
                } => self
                    .testbed
                    .measure_collective(par, coll, group, group_size, bytes),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astral_topo::{build_astral, AstralParams};

    fn fixture() -> Topology {
        build_astral(&AstralParams::sim_small())
    }

    fn small_par() -> ParallelismConfig {
        let mut p = ParallelismConfig::new(4, 2, 4);
        p.microbatches = 4;
        p
    }

    #[test]
    fn scope_detection() {
        let topo = fixture();
        let tb = Testbed::new(&topo, GpuSpec::h100());
        // GPUs 0..4 share one HB domain in sim_small.
        assert_eq!(
            tb.scope_of_group(&[GpuId(0), GpuId(1), GpuId(2)]),
            CommScope::Nvlink
        );
        // Rail-aligned across hosts.
        assert_eq!(
            tb.scope_of_group(&[GpuId(0), GpuId(4), GpuId(8)]),
            CommScope::Rail
        );
        // Mixed rails across hosts.
        assert_eq!(
            tb.scope_of_group(&[GpuId(0), GpuId(5)]),
            CommScope::CrossRail
        );
    }

    #[test]
    fn collective_measurements_are_cached_and_positive() {
        let topo = fixture();
        let tb = Testbed::new(&topo, GpuSpec::h100());
        let par = small_par();
        let d1 = tb.measure_collective(&par, Collective::AllReduce, GroupKind::Dp, 4, 1 << 24);
        let d2 = tb.measure_collective(&par, Collective::AllReduce, GroupKind::Dp, 4, 1 << 24);
        assert!(d1 > 0.0);
        assert_eq!(d1, d2, "second call must hit the cache");
        assert_eq!(tb.comm_cache.borrow().len(), 1);
    }

    #[test]
    fn measured_times_exceed_alpha_beta_ideal() {
        // Protocol losses + chunked steps make the testbed slower than the
        // ideal model — that is the gap calibration must learn.
        let topo = fixture();
        let tb = Testbed::new(&topo, GpuSpec::h100());
        let par = small_par();
        let bytes = 1u64 << 26;
        let measured = tb.measure_collective(&par, Collective::AllReduce, GroupKind::Dp, 4, bytes);
        let ideal = astral_collectives::cost::all_reduce(4, bytes, 400e9, 12e-6);
        assert!(
            measured > ideal,
            "measured {measured} should exceed ideal {ideal}"
        );
    }

    #[test]
    fn calibration_learns_the_truth_laws() {
        let topo = fixture();
        let tb = Testbed::new(&topo, GpuSpec::h100());
        let par = small_par();
        let cal = tb.calibrate(&par, 42);
        // The fitted compute curve must track the hidden law within noise
        // across the realistic kernel-size range (tiny kernels sit below
        // the curve's clamp floor and carry no signal).
        for i in [30u32, 33, 36] {
            let flops = (1u64 << i) as f64;
            let fitted = cal.compute.efficiency(flops);
            let truth = tb.truth().compute_eff(flops);
            assert!(
                (fitted - truth).abs() / truth < 0.12,
                "flops 2^{i}: fitted {fitted} vs truth {truth}"
            );
        }
        // Every scope has at least a Ring curve.
        for scope in [
            CommScope::Nvlink,
            CommScope::Rail,
            CommScope::CrossRail,
            CommScope::CrossDc,
        ] {
            assert!(cal.comm.contains_key(&(scope, CommKind::Ring)));
        }
    }

    #[test]
    fn testbed_executes_a_training_graph() {
        let topo = fixture();
        let tb = Testbed::new(&topo, GpuSpec::h100());
        let par = small_par();
        let mut model = astral_model::ModelConfig::llama3_8b();
        model.layers = 4;
        model.hidden = 1024;
        model.ffn_hidden = 4096;
        model.vocab = 32000;
        model.seq_len = 1024;
        let graph = astral_model::build_training_iteration(&model, &par);
        let timeline = tb.execute(&graph, &par);
        assert!(timeline.total.as_secs_f64() > 0.0);
        assert_eq!(timeline.entries.len(), graph.len());
    }
}
