//! Hidden ground-truth hardware laws — the "real testbed" of this
//! reproduction.
//!
//! The paper calibrates Seer against production measurements. We have no
//! production fleet, so the reproduction defines *ground-truth efficiency
//! laws* that play the role of physical hardware: the testbed executor
//! prices operators with these laws (plus flow-simulated network behaviour),
//! and profiling produces noisy samples of them. Seer never reads this
//! module's laws directly — it only sees measurements — which preserves the
//! paper's epistemic setup: basic modeling (efficiency = 1) deviates when
//! communication dominates; calibration closes the gap.

use crate::calibrate::CommScope;
use crate::suites::GpuSpec;
use astral_sim::SimRng;

/// Ground-truth efficiency laws for one GPU + fabric generation.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The GPU whose peak numbers the laws modulate.
    pub gpu: GpuSpec,
    /// Peak arithmetic efficiency reachable by large kernels.
    pub max_compute_eff: f64,
    /// FLOP count at which kernels reach half of peak efficiency.
    pub compute_knee_flops: f64,
    /// Peak HBM efficiency.
    pub max_memory_eff: f64,
    /// Byte count at which HBM streams reach half of peak efficiency.
    pub memory_knee_bytes: f64,
    /// Expert-selection imbalance: the straggler factor real MoE routing
    /// imposes on expert compute and EP all-to-all (hot experts receive
    /// more tokens than the uniform-routing model assumes). Seer cannot
    /// observe this — it is why the paper reports higher deviation on
    /// MoE models.
    pub moe_imbalance: f64,
}

impl GroundTruth {
    /// Laws for the given GPU (knees scale with device size).
    pub fn for_gpu(gpu: GpuSpec) -> Self {
        GroundTruth {
            compute_knee_flops: gpu.peak_flops * 2e-5,
            memory_knee_bytes: gpu.hbm_bw * 3e-6,
            gpu,
            max_compute_eff: 0.62,
            max_memory_eff: 0.82,
            moe_imbalance: 1.35,
        }
    }

    /// True achieved fraction of peak FLOPs for a kernel of `flops`.
    pub fn compute_eff(&self, flops: f64) -> f64 {
        let x = flops.max(1.0);
        self.max_compute_eff * x / (x + self.compute_knee_flops)
    }

    /// True achieved fraction of peak HBM bandwidth for `bytes`.
    pub fn memory_eff(&self, bytes: f64) -> f64 {
        let x = bytes.max(1.0);
        self.max_memory_eff * x / (x + self.memory_knee_bytes)
    }

    /// True seconds for a compute kernel.
    pub fn compute_secs(&self, flops: f64) -> f64 {
        flops / (self.gpu.peak_flops * self.compute_eff(flops))
    }

    /// True seconds for an HBM stream.
    pub fn memory_secs(&self, bytes: f64) -> f64 {
        bytes / (self.gpu.hbm_bw * self.memory_eff(bytes))
    }

    /// Static fabric efficiency prior per scope (the part of network
    /// throughput loss not captured by the flow simulator's contention:
    /// protocol overheads, NCCL proxy costs).
    pub fn comm_protocol_eff(&self, scope: CommScope, bytes: f64) -> f64 {
        let (peak, knee) = match scope {
            CommScope::Nvlink => (0.92, 2e6),
            CommScope::Rail => (0.90, 8e6),
            CommScope::CrossRail => (0.84, 16e6),
            CommScope::CrossDc => (0.78, 64e6),
        };
        let x = bytes.max(1.0);
        peak * x / (x + knee)
    }

    /// A noisy profiler sample of compute efficiency (±3% multiplicative).
    pub fn measure_compute_eff(&self, flops: f64, rng: &mut SimRng) -> f64 {
        (self.compute_eff(flops) * (1.0 + rng.normal(0.0, 0.03))).clamp(0.01, 1.0)
    }

    /// A noisy profiler sample of memory efficiency.
    pub fn measure_memory_eff(&self, bytes: f64, rng: &mut SimRng) -> f64 {
        (self.memory_eff(bytes) * (1.0 + rng.normal(0.0, 0.03))).clamp(0.01, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_laws_saturate() {
        let t = GroundTruth::for_gpu(GpuSpec::h100());
        assert!(t.compute_eff(1e6) < 0.1, "tiny kernels are inefficient");
        assert!(t.compute_eff(1e13) > 0.55, "huge kernels near peak");
        assert!(t.compute_eff(1e13) <= t.max_compute_eff);
        assert!(t.memory_eff(1e3) < t.memory_eff(1e9));
    }

    #[test]
    fn truth_time_is_above_theoretical() {
        let t = GroundTruth::for_gpu(GpuSpec::h100());
        let flops = 1e12;
        let theoretical = flops / t.gpu.peak_flops;
        assert!(t.compute_secs(flops) > theoretical);
    }

    #[test]
    fn protocol_eff_orders_scopes() {
        let t = GroundTruth::for_gpu(GpuSpec::h100());
        let b = 1e9;
        let nv = t.comm_protocol_eff(CommScope::Nvlink, b);
        let rail = t.comm_protocol_eff(CommScope::Rail, b);
        let xdc = t.comm_protocol_eff(CommScope::CrossDc, b);
        assert!(nv > rail && rail > xdc);
    }

    #[test]
    fn measurements_are_noisy_but_unbiased() {
        let t = GroundTruth::for_gpu(GpuSpec::a100());
        let mut rng = SimRng::new(7);
        let truth = t.compute_eff(1e11);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| t.measure_compute_eff(1e11, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - truth).abs() / truth < 0.01);
    }
}
