//! Seer's operator pricing: basic modeling × calibration.
//!
//! [`ModelPricer`] turns an operator into seconds using the Appendix-E
//! decomposition: tensor volume over bandwidth — where "bandwidth" is the
//! device peak multiplied by the calibrated efficiency for that operator
//! class and size. With [`Calibration::ideal`] this is exactly the
//! uncorrected basic model.

use crate::calibrate::{Calibration, CommKind, CommScope};
use crate::suites::{GpuSpec, NetworkSpec};
use crate::timeline::OpPricer;
use astral_collectives::cost;
use astral_model::{Collective, GroupKind, OpKind, Operator, ParallelismConfig};
use serde::{Deserialize, Serialize};

/// Everything Seer needs to price operators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeerConfig {
    /// GPU device model.
    pub gpu: GpuSpec,
    /// Network environment.
    pub net: NetworkSpec,
    /// Efficiency calibration (use [`Calibration::ideal`] for the
    /// uncorrected basic model).
    pub calibration: Calibration,
}

impl SeerConfig {
    /// H100 GPUs on the Astral fabric, uncalibrated.
    pub fn h100_astral_basic() -> Self {
        SeerConfig {
            gpu: GpuSpec::h100(),
            net: NetworkSpec::astral(),
            calibration: Calibration::ideal(),
        }
    }
}

/// How many *consecutive GPU slots* a communicator's groups span under the
/// Megatron rank order (tp fastest, then dp, then pp).
pub fn span_of(group: GroupKind, group_size: u32, par: &ParallelismConfig) -> u32 {
    match group {
        GroupKind::Tp => group_size,
        // DP ranks stride by tp; EP is a sub-range of DP.
        GroupKind::Dp | GroupKind::Ep => group_size.saturating_mul(par.tp),
        // PP peers are tp·dp apart.
        GroupKind::Pp => par.tp.saturating_mul(par.dp).saturating_add(1),
    }
}

/// Map a communicator to the calibration scope its traffic lives in.
///
/// Under the Megatron rank order, DP/EP communicators stride by `tp`, so
/// when `tp` is a multiple of the rail count their members sit on the same
/// rail — their traffic never needs a Core switch. TP groups are
/// contiguous and hence cross rails once they outgrow the NVLink domain.
pub fn scope_of(
    group: GroupKind,
    span: u32,
    net: &NetworkSpec,
    par: &ParallelismConfig,
) -> CommScope {
    if let Some(x) = net.crossdc {
        if x.affected == group {
            return CommScope::CrossDc;
        }
    }
    if span <= net.hb_domain {
        return CommScope::Nvlink;
    }
    let rails = net.rails.max(1);
    let rail_aligned = |stride: u32| stride.is_multiple_of(rails);
    match group {
        GroupKind::Tp => CommScope::CrossRail,
        GroupKind::Dp | GroupKind::Ep => {
            if rail_aligned(par.tp) {
                CommScope::Rail
            } else {
                CommScope::CrossRail
            }
        }
        GroupKind::Pp => {
            if rail_aligned(par.tp.saturating_mul(par.dp)) {
                CommScope::Rail
            } else {
                // PXN relays keep the network hop same-rail regardless.
                CommScope::Rail
            }
        }
    }
}

/// The memoization class of an operator: which slice of the scenario its
/// price depends on. Compute/Memory/Fused operators are priced from the
/// GPU spec and the compute/HBM calibration curves alone; a communication
/// operator's price additionally depends on the network spec, the comm
/// calibration table, and the rank strides its [`GroupKind`] derives from
/// the parallelism layout (`span_of`/`scope_of`). The what-if service keys
/// its memoized per-operator timings on (class dependency digest, operator
/// shape), so a change that leaves a class's dependency slice untouched
/// reuses every priced entry of that class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Compute-stream operator (Compute / Memory / Fused).
    Exec,
    /// Communication operator on the given communicator kind.
    Comm(GroupKind),
}

impl OpClass {
    /// Number of distinct classes (for per-class dependency tables).
    pub const COUNT: usize = 5;

    /// The class of an operator.
    pub fn of(op: &Operator) -> OpClass {
        match op.kind {
            OpKind::Comm { group, .. } => OpClass::Comm(group),
            _ => OpClass::Exec,
        }
    }

    /// Dense index in `0..OpClass::COUNT`.
    pub fn index(self) -> usize {
        match self {
            OpClass::Exec => 0,
            OpClass::Comm(GroupKind::Tp) => 1,
            OpClass::Comm(GroupKind::Dp) => 2,
            OpClass::Comm(GroupKind::Ep) => 3,
            OpClass::Comm(GroupKind::Pp) => 4,
        }
    }
}

/// The model-based pricer.
#[derive(Debug, Clone)]
pub struct ModelPricer<'a> {
    /// Configuration to price with.
    pub cfg: &'a SeerConfig,
}

impl OpPricer for ModelPricer<'_> {
    fn duration(&self, op: &Operator, par: &ParallelismConfig) -> f64 {
        let gpu = &self.cfg.gpu;
        let cal = &self.cfg.calibration;
        match op.kind {
            OpKind::Compute { flops } => flops / (gpu.peak_flops * cal.compute.efficiency(flops)),
            OpKind::Memory { bytes } => {
                bytes as f64 / (gpu.hbm_bw * cal.memory.efficiency(bytes as f64))
            }
            OpKind::Fused { flops, bytes } => {
                // Roofline: the kernel is bound by the slower of its two
                // resource demands.
                let tc = flops / (gpu.peak_flops * cal.compute.efficiency(flops));
                let tm = bytes as f64 / (gpu.hbm_bw * cal.memory.efficiency(bytes as f64));
                tc.max(tm)
            }
            OpKind::Comm {
                coll,
                group,
                group_size,
                bytes,
            } => {
                let span = span_of(group, group_size, par);
                let stride = match group {
                    GroupKind::Tp => 1,
                    GroupKind::Dp | GroupKind::Ep => par.tp,
                    GroupKind::Pp => par.tp.saturating_mul(par.dp),
                };
                let (bw, alpha) = self.cfg.net.blended_link_for(group, group_size, stride);
                let scope = scope_of(group, span, &self.cfg.net, par);
                let kind = match coll {
                    Collective::AllToAll => CommKind::AllToAll,
                    Collective::Send | Collective::Recv => CommKind::PointToPoint,
                    _ => CommKind::Ring,
                };
                let (eff, alpha_cal) = cal.comm_params(scope, kind, bytes);
                let eff_bw = bw * eff;
                let alpha = alpha_cal.unwrap_or(alpha);
                let n = group_size as usize;
                match coll {
                    Collective::AllReduce => cost::all_reduce(n, bytes, eff_bw, alpha),
                    Collective::ReduceScatter => cost::reduce_scatter(n, bytes, eff_bw, alpha),
                    Collective::AllGather => cost::all_gather(n, bytes, eff_bw, alpha),
                    Collective::AllToAll => cost::all_to_all(n, bytes, eff_bw, alpha),
                    Collective::Broadcast => cost::broadcast(n, bytes, eff_bw, alpha),
                    Collective::Send => cost::send_recv(bytes, eff_bw, alpha),
                    // The transfer is priced on the Send; Recv models the
                    // completion handshake.
                    Collective::Recv => alpha,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::EfficiencyCurve;
    use astral_model::{OpId, OperatorGraph};

    fn op(kind: OpKind) -> Operator {
        let mut g = OperatorGraph::new(1);
        let id = g.push("x", 0, kind, vec![]);
        assert_eq!(id, OpId(0));
        g.ops.remove(0)
    }

    fn par() -> ParallelismConfig {
        ParallelismConfig::new(8, 4, 4)
    }

    #[test]
    fn compute_pricing_is_flops_over_peak_when_ideal() {
        let cfg = SeerConfig::h100_astral_basic();
        let p = ModelPricer { cfg: &cfg };
        let t = p.duration(&op(OpKind::Compute { flops: 1e12 }), &par());
        assert!((t - 1e12 / cfg.gpu.peak_flops).abs() < 1e-12);
    }

    #[test]
    fn fused_is_roofline_max() {
        let cfg = SeerConfig::h100_astral_basic();
        let p = ModelPricer { cfg: &cfg };
        // Memory-bound fused op: tiny flops, huge bytes.
        let t = p.duration(
            &op(OpKind::Fused {
                flops: 1e6,
                bytes: 1 << 30,
            }),
            &par(),
        );
        let tm = (1u64 << 30) as f64 / cfg.gpu.hbm_bw;
        assert!((t - tm).abs() / tm < 1e-9);
    }

    #[test]
    fn tp_inside_hb_domain_prices_at_nvlink() {
        let cfg = SeerConfig::h100_astral_basic();
        let p = ModelPricer { cfg: &cfg };
        let comm = |group, group_size| {
            op(OpKind::Comm {
                coll: Collective::AllReduce,
                group,
                group_size,
                bytes: 1 << 26,
            })
        };
        let t_tp = p.duration(&comm(GroupKind::Tp, 8), &par());
        let t_dp = p.duration(&comm(GroupKind::Dp, 8), &par());
        // Same collective, same bytes: TP (NVLink) ≪ DP (rail).
        assert!(t_tp < t_dp / 3.0, "tp {t_tp} dp {t_dp}");
    }

    #[test]
    fn calibration_slows_predictions() {
        let mut cfg = SeerConfig::h100_astral_basic();
        cfg.calibration.compute = EfficiencyCurve::constant(0.5);
        let p = ModelPricer { cfg: &cfg };
        let t = p.duration(&op(OpKind::Compute { flops: 1e12 }), &par());
        assert!((t - 2e12 / cfg.gpu.peak_flops).abs() < 1e-12);
    }

    #[test]
    fn crossdc_affects_only_selected_group() {
        let mut cfg = SeerConfig::h100_astral_basic();
        cfg.net = cfg.net.with_crossdc(GroupKind::Dp, 16.0, 300.0);
        let p = ModelPricer { cfg: &cfg };
        let mk = |group| {
            op(OpKind::Comm {
                coll: Collective::AllReduce,
                group,
                group_size: 32,
                bytes: 1 << 28,
            })
        };
        let t_dp = p.duration(&mk(GroupKind::Dp), &par());
        let t_ep = p.duration(&mk(GroupKind::Ep), &par());
        assert!(t_dp > t_ep, "cross-DC DP must be slower");
    }

    #[test]
    fn span_arithmetic() {
        let par = par(); // tp=8, pp=4, dp=4
        assert_eq!(span_of(GroupKind::Tp, 8, &par), 8);
        assert_eq!(span_of(GroupKind::Dp, 4, &par), 32);
        assert_eq!(span_of(GroupKind::Ep, 2, &par), 16);
        assert_eq!(span_of(GroupKind::Pp, 2, &par), 33);
    }

    #[test]
    fn ep_scope_follows_rail_alignment() {
        let net = crate::suites::NetworkSpec::astral(); // 8 rails, hb 8
                                                        // tp = 8 = rails: EP members stride 8 → rail-aligned.
        let aligned = ParallelismConfig::new(8, 2, 8);
        assert_eq!(
            scope_of(GroupKind::Ep, 64, &net, &aligned),
            crate::calibrate::CommScope::Rail
        );
        // tp = 4: EP members hop rails → CrossRail.
        let misaligned = ParallelismConfig::new(4, 2, 8);
        assert_eq!(
            scope_of(GroupKind::Ep, 32, &net, &misaligned),
            crate::calibrate::CommScope::CrossRail
        );
    }
}
