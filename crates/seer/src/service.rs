//! Seer as an online what-if service (ROADMAP item 4).
//!
//! The paper's capacity-planning use case implies an *interactive* serving
//! path: an operator asks "what if I scale this job ×4 / swap the topology
//! / change TP×PP×DP / degrade a link class?" and expects an answer in
//! milliseconds, not a batch grid re-run. [`SeerService`] is that path:
//!
//! * A **content-addressed forecast cache** keyed on a canonical FNV-1a
//!   digest of the whole scenario — model config, parallelism layout,
//!   GPU/network spec, calibration, topology fingerprint — with
//!   hit/miss/evict counters ([`CacheStats`]) surfaced in bench reports.
//!   Two scenarios with the same digest are the same scenario, so a cached
//!   answer is bitwise the answer a cold forecast would produce.
//! * **Memoized operator sub-timings** shared across queries: every priced
//!   operator lands in a `(class dependency digest, operator shape)` keyed
//!   memo. The dependency digest of a class ([`OpClass`]) covers exactly
//!   the scenario slice that class's price reads — compute/HBM curves and
//!   the GPU for compute-stream ops, the network spec + comm calibration +
//!   group strides for each communicator kind — so a what-if that changes
//!   only the DP degree re-prices the DP/PP-comm subgraph (whose strides
//!   changed) and reuses every compute and TP-comm entry. Invalidation is
//!   by construction: a changed dependency slice changes the key, so a
//!   stale entry can never be served; superseded generations age out of
//!   the bounded memo FIFO (counted as evictions). This mirrors the
//!   dirty-component idiom of the incremental rate solver.
//! * A **[`WhatIfQuery`]/[`WhatIfAnswer`] API** driving thousands of
//!   queries per second on the [`astral_exec`] pool. Batches are answered
//!   with the same serial-decision / parallel-pricing split the fleet
//!   controller uses: digests, cache lookups and counters are computed
//!   serially in submission order, only the distinct cache misses fan out,
//!   and results merge back serially — so answers *and* counters are
//!   byte-identical at any `ASTRAL_THREADS` width.

use crate::calibrate::{Calibration, CommKind, CommScope, EfficiencyCurve};
use crate::pricer::{ModelPricer, OpClass, SeerConfig};
use crate::suites::{GpuSpec, NetworkSpec};
use crate::timeline::{schedule, OpPricer, Timeline};
use astral_exec::Pool;
use astral_model::{
    build_training_iteration, Collective, DpSync, GroupKind, ModelConfig, OpKind, Operator,
    ParallelismConfig,
};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// An incremental FNV-1a 64-bit digest over a canonical byte encoding:
/// integers little-endian, floats via [`f64::to_bits`], strings as length
/// then bytes, options as a presence tag then the payload. Everything the
/// forecast cache keys on funnels through this writer, so the cache key is
/// a pure function of scenario *content*.
#[derive(Debug, Clone)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// A fresh digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feed one byte.
    pub fn write_u8(&mut self, x: u8) {
        self.write_bytes(&[x]);
    }

    /// Feed a `u32`, little-endian.
    pub fn write_u32(&mut self, x: u32) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Feed a `u64`, little-endian.
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Feed an `f64` as its exact bit pattern.
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Feed a bool as one byte.
    pub fn write_bool(&mut self, x: bool) {
        self.write_u8(x as u8);
    }

    /// Feed a string as length then bytes (prefix-free).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest value accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn group_tag(g: GroupKind) -> u8 {
    match g {
        GroupKind::Tp => 0,
        GroupKind::Dp => 1,
        GroupKind::Ep => 2,
        GroupKind::Pp => 3,
    }
}

fn coll_tag(c: Collective) -> u8 {
    match c {
        Collective::AllReduce => 0,
        Collective::ReduceScatter => 1,
        Collective::AllGather => 2,
        Collective::AllToAll => 3,
        Collective::Broadcast => 4,
        Collective::Send => 5,
        Collective::Recv => 6,
    }
}

fn scope_tag(s: CommScope) -> u8 {
    match s {
        CommScope::Nvlink => 0,
        CommScope::Rail => 1,
        CommScope::CrossRail => 2,
        CommScope::CrossDc => 3,
    }
}

fn kind_tag(k: CommKind) -> u8 {
    match k {
        CommKind::Ring => 0,
        CommKind::AllToAll => 1,
        CommKind::PointToPoint => 2,
    }
}

fn feed_curve(d: &mut Digest, c: &EfficiencyCurve) {
    let coeffs = c.coefficients();
    d.write_u64(coeffs.len() as u64);
    for &k in coeffs {
        d.write_f64(k);
    }
    let (lo, hi) = c.domain();
    d.write_f64(lo);
    d.write_f64(hi);
}

fn feed_model(d: &mut Digest, m: &ModelConfig) {
    d.write_str(&m.name);
    d.write_u32(m.layers);
    d.write_u64(m.hidden);
    d.write_u32(m.heads);
    d.write_u32(m.kv_heads);
    d.write_u64(m.ffn_hidden);
    d.write_u64(m.vocab);
    d.write_u64(m.seq_len);
    d.write_u32(m.dtype_bytes);
    d.write_bool(m.gated_ffn);
    match &m.moe {
        None => d.write_u8(0),
        Some(moe) => {
            d.write_u8(1);
            d.write_u32(moe.experts);
            d.write_u32(moe.top_k);
            d.write_u64(moe.expert_ffn_hidden);
        }
    }
}

fn feed_par(d: &mut Digest, p: &ParallelismConfig) {
    d.write_u32(p.tp);
    d.write_u32(p.pp);
    d.write_u32(p.dp);
    d.write_u32(p.ep);
    d.write_u8(match p.zero {
        DpSync::AllReduce => 0,
        DpSync::Zero1 => 1,
        DpSync::Zero3 => 2,
    });
    d.write_u32(p.microbatches);
    d.write_u32(p.micro_batch_size);
    d.write_bool(p.overlap_grad_sync);
}

fn feed_gpu(d: &mut Digest, g: &GpuSpec) {
    d.write_str(&g.name);
    d.write_f64(g.peak_flops);
    d.write_f64(g.hbm_bw);
    d.write_u64(g.hbm_bytes);
    d.write_f64(g.tdp_w);
    d.write_f64(g.idle_w);
}

fn feed_net(d: &mut Digest, n: &NetworkSpec) {
    d.write_f64(n.rail_bw_bps);
    d.write_f64(n.nvlink_bw_bps);
    d.write_u32(n.hb_domain);
    d.write_u32(n.rails);
    d.write_f64(n.alpha_s);
    d.write_f64(n.nvlink_alpha_s);
    match &n.crossdc {
        None => d.write_u8(0),
        Some(x) => {
            d.write_u8(1);
            d.write_u8(group_tag(x.affected));
            d.write_f64(x.per_gpu_bw_bps);
            d.write_f64(x.latency_s);
        }
    }
}

fn feed_comm_cal(d: &mut Digest, cal: &Calibration) {
    // HashMap iteration order is not deterministic: canonicalize by
    // sorting on the (scope, kind) tags before feeding.
    let mut entries: Vec<_> = cal.comm.iter().collect();
    entries.sort_by_key(|((s, k), _)| (scope_tag(*s), kind_tag(*k)));
    d.write_u64(entries.len() as u64);
    for ((s, k), c) in entries {
        d.write_u8(scope_tag(*s));
        d.write_u8(kind_tag(*k));
        d.write_f64(c.alpha_s);
        feed_curve(d, &c.eff);
    }
}

/// A fully resolved forecasting scenario — everything a forecast is a pure
/// function of, and therefore everything its cache digest covers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The model being trained.
    pub model: ModelConfig,
    /// The parallelism layout.
    pub par: ParallelismConfig,
    /// GPU, network, and calibration suites (the [`SeerConfig`] Seer
    /// prices with).
    pub cfg: SeerConfig,
    /// Fingerprint of the physical topology this scenario runs on
    /// ([`astral_topo::Topology::fingerprint`]); `0` when the scenario is
    /// purely spec-driven.
    pub topo_fingerprint: u64,
}

impl ScenarioSpec {
    /// The canonical FNV-1a content digest — the forecast-cache key. Two
    /// specs digest equal iff every field that can influence the forecast
    /// is equal (strings, integers, and exact float bit patterns).
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u8(1); // digest schema version
        feed_model(&mut d, &self.model);
        feed_par(&mut d, &self.par);
        feed_gpu(&mut d, &self.cfg.gpu);
        feed_net(&mut d, &self.cfg.net);
        feed_curve(&mut d, &self.cfg.calibration.compute);
        feed_curve(&mut d, &self.cfg.calibration.memory);
        feed_comm_cal(&mut d, &self.cfg.calibration);
        d.write_u64(self.topo_fingerprint);
        d.finish()
    }
}

/// The bandwidth class a [`WhatIf::DegradeLinkClass`] query throttles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    /// Intra-HB-domain NVLink bandwidth.
    Nvlink,
    /// Per-GPU rail (scale-out NIC) bandwidth.
    Rail,
    /// The cross-datacenter long haul (a no-op when the scenario has no
    /// cross-DC assignment).
    CrossDc,
}

/// One change a what-if query applies to the service's baseline scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WhatIf {
    /// Scale the job ×N: multiply the data-parallel degree (and with it
    /// the global batch) by `factor`.
    ScaleDp {
        /// DP multiplier (≥ 1).
        factor: u32,
    },
    /// Swap the network fabric: replace the network spec and the topology
    /// fingerprint it models.
    SwapTopology {
        /// The replacement network environment.
        net: NetworkSpec,
        /// Fingerprint of the replacement topology (`0` if spec-only).
        topo_fingerprint: u64,
    },
    /// Change the TP×PP×DP decomposition. Microbatches follow the
    /// `2·pp` convention of [`ParallelismConfig::new`]; ZeRO mode,
    /// microbatch size and overlap are inherited from the baseline, and
    /// the baseline's EP degree is kept when it still divides `dp`.
    SetParallelism {
        /// Tensor-parallel degree.
        tp: u32,
        /// Pipeline stages.
        pp: u32,
        /// Data-parallel replicas.
        dp: u32,
    },
    /// Degrade one bandwidth class to `factor` of its current value
    /// (gray-failure style what-if; `factor` in (0, 1]).
    DegradeLinkClass {
        /// Which link class is degraded.
        class: LinkClass,
        /// Surviving fraction of the class's bandwidth, in (0, 1].
        factor: f64,
    },
    /// Swap the model being trained.
    SwapModel {
        /// The replacement model.
        model: ModelConfig,
    },
    /// Swap the GPU device model.
    SwapGpu {
        /// The replacement GPU spec.
        gpu: GpuSpec,
    },
}

/// A what-if query: a sequence of changes applied, in order, on top of the
/// service's baseline scenario. An empty sequence asks about the baseline
/// itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WhatIfQuery {
    /// Changes applied left to right on the baseline.
    pub changes: Vec<WhatIf>,
}

impl WhatIfQuery {
    /// The baseline scenario, unchanged.
    pub fn baseline() -> Self {
        WhatIfQuery::default()
    }

    /// A single-change query.
    pub fn one(change: WhatIf) -> Self {
        WhatIfQuery {
            changes: vec![change],
        }
    }

    /// A multi-change query, applied left to right.
    pub fn of(changes: Vec<WhatIf>) -> Self {
        WhatIfQuery { changes }
    }
}

/// The compact forecast a cached scenario resolves to — every field a pure
/// (and bitwise-pinned) function of the scenario content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedForecast {
    /// Iteration time, seconds.
    pub iteration_s: f64,
    /// Training tokens per second across the job.
    pub tokens_per_s: f64,
    /// Model FLOPs utilization.
    pub mfu: f64,
    /// Exposed-communication fraction of the makespan.
    pub exposed_comm_fraction: f64,
    /// Iteration time over the busiest device's compute-stream busy time
    /// (≥ 1): the communication/bubble overhead multiplier the fleet
    /// controller uses in place of its fixed planning margin.
    pub comm_overhead_ratio: f64,
    /// FNV-1a fingerprint of the full operator timeline
    /// ([`Timeline::fingerprint`]).
    pub timeline_fingerprint: u64,
}

impl CachedForecast {
    /// FNV-1a fingerprint over the exact bit patterns of every field —
    /// what the determinism gates compare across pool widths and between
    /// cached and uncached serving paths.
    pub fn bits_fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.write_f64(self.iteration_s);
        d.write_f64(self.tokens_per_s);
        d.write_f64(self.mfu);
        d.write_f64(self.exposed_comm_fraction);
        d.write_f64(self.comm_overhead_ratio);
        d.write_u64(self.timeline_fingerprint);
        d.finish()
    }
}

/// The answer to one what-if query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhatIfAnswer {
    /// Content digest of the resolved scenario (the cache key).
    pub digest: u64,
    /// Whether the answer was served from the forecast cache (including
    /// same-batch deduplication onto an in-flight pricing).
    pub cache_hit: bool,
    /// The forecast.
    pub forecast: CachedForecast,
}

/// Hit/miss/evict counters of both service caches. All counters are
/// updated in the serial phases of [`SeerService::answer_batch`] (or by
/// order-independent sums over per-task counts), so they are byte-identical
/// at any pool width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Forecast-cache hits (including same-batch dedup hits).
    pub forecast_hits: u64,
    /// Forecast-cache misses (scenarios priced from scratch).
    pub forecast_misses: u64,
    /// Forecasts evicted by the FIFO capacity bound.
    pub forecast_evictions: u64,
    /// Operator-memo hits across all pricings.
    pub op_hits: u64,
    /// Operator-memo misses (operators priced by the model).
    pub op_misses: u64,
    /// Operator entries evicted by the FIFO capacity bound.
    pub op_evictions: u64,
}

impl CacheStats {
    /// Forecast-cache hit rate in [0, 1] (0 when no queries were served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.forecast_hits + self.forecast_misses;
        if total == 0 {
            0.0
        } else {
            self.forecast_hits as f64 / total as f64
        }
    }

    /// Operator-memo hit rate in [0, 1] (0 when nothing was priced).
    pub fn op_hit_rate(&self) -> f64 {
        let total = self.op_hits + self.op_misses;
        if total == 0 {
            0.0
        } else {
            self.op_hits as f64 / total as f64
        }
    }
}

/// Key of one memoized operator timing: (class dependency digest,
/// operator shape digest).
type OpKey = (u64, u64);

/// Per-class dependency digests for one scenario: the digest of exactly
/// the scenario slice each [`OpClass`]'s price reads. A what-if that
/// leaves a slice untouched leaves that class's keys untouched — its
/// entries hit; a what-if that changes the slice changes every key — the
/// class's subgraph re-prices and can never be served stale.
fn class_dep_digests(spec: &ScenarioSpec) -> [u64; OpClass::COUNT] {
    let mut out = [0u64; OpClass::COUNT];
    // Compute-stream ops read the GPU's peak FLOPS / HBM bandwidth and the
    // compute/memory calibration curves; nothing else.
    let mut d = Digest::new();
    d.write_u8(0);
    d.write_f64(spec.cfg.gpu.peak_flops);
    d.write_f64(spec.cfg.gpu.hbm_bw);
    feed_curve(&mut d, &spec.cfg.calibration.compute);
    feed_curve(&mut d, &spec.cfg.calibration.memory);
    out[OpClass::Exec.index()] = d.finish();
    // A communicator's price reads the network spec, the comm calibration
    // table, and the rank stride its group kind derives from the
    // parallelism layout (TP groups are contiguous; DP/EP stride by tp;
    // PP strides by tp·dp).
    for g in [GroupKind::Tp, GroupKind::Dp, GroupKind::Ep, GroupKind::Pp] {
        let mut d = Digest::new();
        d.write_u8(1);
        d.write_u8(group_tag(g));
        feed_net(&mut d, &spec.cfg.net);
        feed_comm_cal(&mut d, &spec.cfg.calibration);
        let stride = match g {
            GroupKind::Tp => 1,
            GroupKind::Dp | GroupKind::Ep => spec.par.tp,
            GroupKind::Pp => spec.par.tp.saturating_mul(spec.par.dp),
        };
        d.write_u32(stride);
        out[OpClass::Comm(g).index()] = d.finish();
    }
    out
}

/// Shape digest of one operator: its kind tag plus every kind field the
/// pricer reads (names, ids and devices do not affect the price).
fn op_shape_key(op: &Operator) -> u64 {
    let mut d = Digest::new();
    match op.kind {
        OpKind::Compute { flops } => {
            d.write_u8(0);
            d.write_f64(flops);
        }
        OpKind::Memory { bytes } => {
            d.write_u8(1);
            d.write_u64(bytes);
        }
        OpKind::Fused { flops, bytes } => {
            d.write_u8(2);
            d.write_f64(flops);
            d.write_u64(bytes);
        }
        OpKind::Comm {
            coll,
            group,
            group_size,
            bytes,
        } => {
            d.write_u8(3);
            d.write_u8(coll_tag(coll));
            d.write_u8(group_tag(group));
            d.write_u32(group_size);
            d.write_u64(bytes);
        }
    }
    d.finish()
}

/// [`ModelPricer`] behind the operator memo: look up (frozen snapshot,
/// then entries freshly priced in this task), price on miss, and record
/// fresh entries in first-compute order so the serial merge is
/// deterministic.
struct MemoPricer<'a> {
    base: ModelPricer<'a>,
    dep: [u64; OpClass::COUNT],
    frozen: &'a HashMap<OpKey, f64>,
    fresh_index: RefCell<HashMap<OpKey, usize>>,
    fresh: RefCell<Vec<(OpKey, f64)>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'a> MemoPricer<'a> {
    fn new(
        cfg: &'a SeerConfig,
        dep: [u64; OpClass::COUNT],
        frozen: &'a HashMap<OpKey, f64>,
    ) -> Self {
        MemoPricer {
            base: ModelPricer { cfg },
            dep,
            frozen,
            fresh_index: RefCell::new(HashMap::new()),
            fresh: RefCell::new(Vec::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }
}

impl OpPricer for MemoPricer<'_> {
    fn duration(&self, op: &Operator, par: &ParallelismConfig) -> f64 {
        let key = (self.dep[OpClass::of(op).index()], op_shape_key(op));
        if let Some(&t) = self.frozen.get(&key) {
            self.hits.set(self.hits.get() + 1);
            return t;
        }
        if let Some(&i) = self.fresh_index.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return self.fresh.borrow()[i].1;
        }
        let t = self.base.duration(op, par);
        self.misses.set(self.misses.get() + 1);
        self.fresh_index
            .borrow_mut()
            .insert(key, self.fresh.borrow().len());
        self.fresh.borrow_mut().push((key, t));
        t
    }
}

/// Outcome of pricing one scenario cold (against a frozen memo snapshot).
struct Priced {
    forecast: CachedForecast,
    /// Fresh memo entries in first-compute order.
    fresh: Vec<(OpKey, f64)>,
    op_hits: u64,
    op_misses: u64,
}

/// Summarize a scheduled timeline into the compact cached forecast, using
/// the same token/MFU arithmetic as [`crate::Seer::forecast_training`].
fn summarize(spec: &ScenarioSpec, timeline: &Timeline) -> CachedForecast {
    let iteration_s = timeline.total.as_secs_f64();
    let tokens = spec.par.global_batch() * spec.model.seq_len;
    let useful_flops = spec.model.train_flops_per_token(spec.model.seq_len) * tokens as f64;
    let mfu = if iteration_s > 0.0 {
        (useful_flops / (spec.cfg.gpu.peak_flops * spec.par.world() as f64 * iteration_s)).min(1.0)
    } else {
        0.0
    };
    let tokens_per_s = if iteration_s > 0.0 {
        tokens as f64 / iteration_s
    } else {
        0.0
    };
    let max_compute = timeline
        .compute_busy
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0f64, f64::max);
    let comm_overhead_ratio = if iteration_s > 0.0 && max_compute > 0.0 {
        (iteration_s / max_compute).max(1.0)
    } else {
        1.0
    };
    CachedForecast {
        iteration_s,
        tokens_per_s,
        mfu,
        exposed_comm_fraction: timeline.exposed_comm_fraction(),
        comm_overhead_ratio,
        timeline_fingerprint: timeline.fingerprint(),
    }
}

/// Price one scenario: expand the operator DAG, schedule it with the
/// memoizing pricer, and summarize. Pure — identical inputs produce
/// bitwise-identical outputs — which is what lets cache misses fan out on
/// the pool without affecting the answers.
fn price_scenario(spec: &ScenarioSpec, frozen: &HashMap<OpKey, f64>) -> Priced {
    let graph = build_training_iteration(&spec.model, &spec.par);
    let pricer = MemoPricer::new(&spec.cfg, class_dep_digests(spec), frozen);
    let timeline = schedule(&graph, &spec.par, &pricer);
    let forecast = summarize(spec, &timeline);
    Priced {
        forecast,
        fresh: pricer.fresh.into_inner(),
        op_hits: pricer.hits.get(),
        op_misses: pricer.misses.get(),
    }
}

/// Default forecast-cache capacity (scenarios).
const DEFAULT_FORECAST_CAPACITY: usize = 4096;
/// Default operator-memo capacity (priced entries).
const DEFAULT_OP_CAPACITY: usize = 1 << 20;

/// The incremental what-if query engine: a baseline scenario plus the
/// content-addressed forecast cache and the cross-query operator memo.
/// See the module docs for the serving architecture.
#[derive(Debug, Clone)]
pub struct SeerService {
    base: ScenarioSpec,
    forecast_capacity: usize,
    op_capacity: usize,
    forecasts: HashMap<u64, CachedForecast>,
    forecast_order: VecDeque<u64>,
    op_memo: HashMap<OpKey, f64>,
    op_order: VecDeque<OpKey>,
    stats: CacheStats,
}

impl SeerService {
    /// A service answering what-ifs against `base`, with default cache
    /// capacities.
    pub fn new(base: ScenarioSpec) -> Self {
        SeerService {
            base,
            forecast_capacity: DEFAULT_FORECAST_CAPACITY,
            op_capacity: DEFAULT_OP_CAPACITY,
            forecasts: HashMap::new(),
            forecast_order: VecDeque::new(),
            op_memo: HashMap::new(),
            op_order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Override the cache capacity bounds (forecast scenarios, memoized
    /// operator entries). Both caches evict FIFO past their bound.
    pub fn with_capacities(mut self, forecasts: usize, ops: usize) -> Self {
        self.forecast_capacity = forecasts.max(1);
        self.op_capacity = ops.max(1);
        self
    }

    /// The baseline scenario queries are applied on.
    pub fn baseline(&self) -> &ScenarioSpec {
        &self.base
    }

    /// Cache counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached forecasts currently held.
    pub fn cached_forecasts(&self) -> usize {
        self.forecasts.len()
    }

    /// Memoized operator entries currently held.
    pub fn cached_ops(&self) -> usize {
        self.op_memo.len()
    }

    /// Resolve a query into the full scenario it asks about.
    pub fn resolve(&self, query: &WhatIfQuery) -> ScenarioSpec {
        let mut spec = self.base.clone();
        for change in &query.changes {
            apply(&mut spec, change);
        }
        spec
    }

    /// Answer one query (serial; equivalent to a width-1 batch).
    pub fn answer(&mut self, query: &WhatIfQuery) -> WhatIfAnswer {
        self.answer_batch(&Pool::with_threads(1), std::slice::from_ref(query))
            .pop()
            .expect("one query yields one answer")
    }

    /// Answer a batch of queries on the given pool.
    ///
    /// Serial phase 1 resolves digests, counts hits/misses, and collects
    /// the distinct misses in first-occurrence order. The misses are
    /// priced in parallel against a frozen snapshot of the operator memo
    /// (pricing is pure, result slots return in submission order). Serial
    /// phase 2 merges fresh memo entries and forecasts back in submission
    /// order and applies the FIFO capacity bounds. Answers and counters
    /// are therefore byte-identical at any pool width.
    pub fn answer_batch(&mut self, pool: &Pool, queries: &[WhatIfQuery]) -> Vec<WhatIfAnswer> {
        struct Pending {
            digest: u64,
            hit: bool,
            cached: Option<CachedForecast>,
        }
        let mut pending: Vec<Pending> = Vec::with_capacity(queries.len());
        let mut in_flight: HashMap<u64, usize> = HashMap::new();
        let mut misses: Vec<(u64, ScenarioSpec)> = Vec::new();
        for query in queries {
            let spec = self.resolve(query);
            let digest = spec.digest();
            if let Some(f) = self.forecasts.get(&digest) {
                self.stats.forecast_hits += 1;
                pending.push(Pending {
                    digest,
                    hit: true,
                    cached: Some(*f),
                });
            } else {
                match in_flight.entry(digest) {
                    // Same-batch repeat of a miss: served by the first
                    // occurrence's pricing — a hit for accounting purposes.
                    std::collections::hash_map::Entry::Occupied(_) => {
                        self.stats.forecast_hits += 1;
                        pending.push(Pending {
                            digest,
                            hit: true,
                            cached: None,
                        });
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        self.stats.forecast_misses += 1;
                        slot.insert(misses.len());
                        misses.push((digest, spec));
                        pending.push(Pending {
                            digest,
                            hit: false,
                            cached: None,
                        });
                    }
                }
            }
        }

        let frozen = &self.op_memo;
        let priced: Vec<Priced> = pool.map(&misses, |m: &(u64, ScenarioSpec)| {
            price_scenario(&m.1, frozen)
        });

        // Merge, in submission order: operator entries first (duplicate
        // keys computed by concurrent tasks keep the first task's value —
        // they are bitwise equal by purity), then forecasts.
        for p in &priced {
            self.stats.op_hits += p.op_hits;
            self.stats.op_misses += p.op_misses;
            for &(key, t) in &p.fresh {
                if let std::collections::hash_map::Entry::Vacant(slot) = self.op_memo.entry(key) {
                    slot.insert(t);
                    self.op_order.push_back(key);
                }
            }
        }
        while self.op_memo.len() > self.op_capacity {
            match self.op_order.pop_front() {
                Some(key) => {
                    self.op_memo.remove(&key);
                    self.stats.op_evictions += 1;
                }
                None => break,
            }
        }
        let mut computed: HashMap<u64, CachedForecast> = HashMap::with_capacity(priced.len());
        for ((digest, _), p) in misses.iter().zip(&priced) {
            computed.insert(*digest, p.forecast);
            self.forecasts.insert(*digest, p.forecast);
            self.forecast_order.push_back(*digest);
        }
        while self.forecasts.len() > self.forecast_capacity {
            match self.forecast_order.pop_front() {
                Some(digest) => {
                    self.forecasts.remove(&digest);
                    self.stats.forecast_evictions += 1;
                }
                None => break,
            }
        }

        pending
            .into_iter()
            .map(|p| WhatIfAnswer {
                digest: p.digest,
                cache_hit: p.hit,
                forecast: p.cached.unwrap_or_else(|| computed[&p.digest]),
            })
            .collect()
    }

    /// Forecast a query from scratch, bypassing both caches (nothing is
    /// read or written). The bitwise-equality oracle for the cached
    /// serving path.
    pub fn forecast_uncached(&self, query: &WhatIfQuery) -> CachedForecast {
        let empty = HashMap::new();
        price_scenario(&self.resolve(query), &empty).forecast
    }
}

/// Apply one change to a resolved scenario.
fn apply(spec: &mut ScenarioSpec, change: &WhatIf) {
    match change {
        WhatIf::ScaleDp { factor } => {
            spec.par.dp = spec.par.dp.saturating_mul((*factor).max(1));
            if !spec.par.dp.is_multiple_of(spec.par.ep) {
                spec.par.ep = 1;
            }
        }
        WhatIf::SwapTopology {
            net,
            topo_fingerprint,
        } => {
            spec.cfg.net = net.clone();
            spec.topo_fingerprint = *topo_fingerprint;
        }
        WhatIf::SetParallelism { tp, pp, dp } => {
            let mut par = ParallelismConfig::new((*tp).max(1), (*pp).max(1), (*dp).max(1));
            par.zero = spec.par.zero;
            par.micro_batch_size = spec.par.micro_batch_size;
            par.overlap_grad_sync = spec.par.overlap_grad_sync;
            if par.dp.is_multiple_of(spec.par.ep) {
                par.ep = spec.par.ep;
            }
            spec.par = par;
        }
        WhatIf::DegradeLinkClass { class, factor } => {
            let f = factor.clamp(1e-3, 1.0);
            match class {
                LinkClass::Nvlink => spec.cfg.net.nvlink_bw_bps *= f,
                LinkClass::Rail => spec.cfg.net.rail_bw_bps *= f,
                LinkClass::CrossDc => {
                    if let Some(x) = &mut spec.cfg.net.crossdc {
                        x.per_gpu_bw_bps *= f;
                    }
                }
            }
        }
        WhatIf::SwapModel { model } => spec.model = model.clone(),
        WhatIf::SwapGpu { gpu } => spec.cfg.gpu = gpu.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> ModelConfig {
        let mut m = ModelConfig::llama3_8b();
        m.layers = 4;
        m.hidden = 2048;
        m.ffn_hidden = 8192;
        m.vocab = 32000;
        m.seq_len = 2048;
        m
    }

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            model: small_model(),
            par: ParallelismConfig::new(4, 2, 4),
            cfg: SeerConfig::h100_astral_basic(),
            topo_fingerprint: 0xfeed,
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = base_spec();
        assert_eq!(a.digest(), a.digest());
        assert_eq!(a.digest(), a.clone().digest());
        // Every axis of the key must move the digest.
        let mut m = a.clone();
        m.model.layers += 1;
        assert_ne!(a.digest(), m.digest());
        let mut p = a.clone();
        p.par.dp *= 2;
        assert_ne!(a.digest(), p.digest());
        let mut g = a.clone();
        g.cfg.gpu.peak_flops *= 1.0 + 1e-15; // one-ulp-ish change
        assert_ne!(a.digest(), g.digest());
        let mut n = a.clone();
        n.cfg.net.rail_bw_bps *= 0.5;
        assert_ne!(a.digest(), n.digest());
        let mut c = a.clone();
        c.cfg.calibration.compute = EfficiencyCurve::constant(0.5);
        assert_ne!(a.digest(), c.digest());
        let mut t = a.clone();
        t.topo_fingerprint ^= 1;
        assert_ne!(a.digest(), t.digest());
    }

    #[test]
    fn calibration_digest_is_map_order_independent() {
        use crate::calibrate::CommCalibration;
        let entry = |alpha| CommCalibration {
            alpha_s: alpha,
            eff: EfficiencyCurve::constant(0.8),
        };
        let mut a = base_spec();
        a.cfg
            .calibration
            .comm
            .insert((CommScope::Rail, CommKind::Ring), entry(1e-6));
        a.cfg
            .calibration
            .comm
            .insert((CommScope::Nvlink, CommKind::Ring), entry(2e-6));
        let mut b = base_spec();
        // Insert in the opposite order.
        b.cfg
            .calibration
            .comm
            .insert((CommScope::Nvlink, CommKind::Ring), entry(2e-6));
        b.cfg
            .calibration
            .comm
            .insert((CommScope::Rail, CommKind::Ring), entry(1e-6));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn dp_change_dirties_dp_and_pp_comm_but_not_exec_or_tp() {
        let a = base_spec();
        let mut b = a.clone();
        b.par.dp *= 2;
        let da = class_dep_digests(&a);
        let db = class_dep_digests(&b);
        assert_eq!(da[OpClass::Exec.index()], db[OpClass::Exec.index()]);
        assert_eq!(
            da[OpClass::Comm(GroupKind::Tp).index()],
            db[OpClass::Comm(GroupKind::Tp).index()]
        );
        // DP stride (tp) is unchanged — DP entries stay valid; the DP
        // group *size* lives in the shape key, so grown groups re-price.
        assert_eq!(
            da[OpClass::Comm(GroupKind::Dp).index()],
            db[OpClass::Comm(GroupKind::Dp).index()]
        );
        // PP strides by tp·dp: its subgraph is dirty.
        assert_ne!(
            da[OpClass::Comm(GroupKind::Pp).index()],
            db[OpClass::Comm(GroupKind::Pp).index()]
        );
    }

    #[test]
    fn tp_change_dirties_every_comm_class() {
        let a = base_spec();
        let mut b = a.clone();
        b.par.tp *= 2;
        let da = class_dep_digests(&a);
        let db = class_dep_digests(&b);
        assert_eq!(da[OpClass::Exec.index()], db[OpClass::Exec.index()]);
        for g in [GroupKind::Dp, GroupKind::Ep, GroupKind::Pp] {
            assert_ne!(
                da[OpClass::Comm(g).index()],
                db[OpClass::Comm(g).index()],
                "{g:?} must be dirtied by a TP change"
            );
        }
        // TP comm ops carry their group size in the shape key, so even
        // with an identical dep digest a changed TP degree changes the
        // key; the stride axis is covered by the other classes.
    }

    #[test]
    fn changed_tp_never_serves_a_stale_tp_comm_entry() {
        // Warm the service at tp=4, then query tp=2: every answer must be
        // bitwise identical to a cold forecast of the tp=2 scenario.
        let mut svc = SeerService::new(base_spec());
        let warm = WhatIfQuery::baseline();
        let probe = WhatIfQuery::one(WhatIf::SetParallelism {
            tp: 2,
            pp: 2,
            dp: 4,
        });
        svc.answer(&warm);
        let served = svc.answer(&probe);
        let cold = SeerService::new(base_spec()).forecast_uncached(&probe);
        assert_eq!(
            served.forecast.bits_fingerprint(),
            cold.bits_fingerprint(),
            "memoized serving diverged from the cold oracle after a TP change"
        );
        assert!(served.forecast.iteration_s > 0.0);
    }

    #[test]
    fn dp_only_change_reuses_compute_and_tp_entries() {
        let mut svc = SeerService::new(base_spec());
        svc.answer(&WhatIfQuery::baseline());
        let before = svc.stats();
        let ans = svc.answer(&WhatIfQuery::one(WhatIf::ScaleDp { factor: 2 }));
        let after = svc.stats();
        assert!(!ans.cache_hit);
        let hits = after.op_hits - before.op_hits;
        let misses = after.op_misses - before.op_misses;
        assert!(
            hits > 0,
            "a DP-only what-if must reuse compute/TP entries (got {hits} hits, {misses} misses)"
        );
        assert!(
            misses > 0,
            "a DP-only what-if must re-price the dirty DP subgraph"
        );
        // And the memoized answer still matches the cold oracle bitwise.
        let cold = SeerService::new(base_spec())
            .forecast_uncached(&WhatIfQuery::one(WhatIf::ScaleDp { factor: 2 }));
        assert_eq!(ans.forecast.bits_fingerprint(), cold.bits_fingerprint());
    }

    #[test]
    fn repeat_queries_hit_and_answers_are_bitwise_stable() {
        let mut svc = SeerService::new(base_spec());
        let q = WhatIfQuery::one(WhatIf::DegradeLinkClass {
            class: LinkClass::Rail,
            factor: 0.5,
        });
        let first = svc.answer(&q);
        assert!(!first.cache_hit);
        let second = svc.answer(&q);
        assert!(second.cache_hit);
        assert_eq!(
            first.forecast.bits_fingerprint(),
            second.forecast.bits_fingerprint()
        );
        assert_eq!(svc.stats().forecast_hits, 1);
        assert_eq!(svc.stats().forecast_misses, 1);
    }

    #[test]
    fn batch_dedup_counts_repeats_as_hits() {
        let mut svc = SeerService::new(base_spec());
        let q = WhatIfQuery::one(WhatIf::ScaleDp { factor: 4 });
        let batch = vec![q.clone(), q.clone(), q];
        let answers = svc.answer_batch(&Pool::with_threads(2), &batch);
        assert_eq!(answers.len(), 3);
        assert!(!answers[0].cache_hit);
        assert!(answers[1].cache_hit && answers[2].cache_hit);
        assert_eq!(
            answers[0].forecast.bits_fingerprint(),
            answers[2].forecast.bits_fingerprint()
        );
        assert_eq!(svc.stats().forecast_misses, 1);
        assert_eq!(svc.stats().forecast_hits, 2);
    }

    #[test]
    fn forecast_cache_evicts_fifo_past_capacity() {
        let mut svc = SeerService::new(base_spec()).with_capacities(1, 1 << 20);
        svc.answer(&WhatIfQuery::baseline());
        svc.answer(&WhatIfQuery::one(WhatIf::ScaleDp { factor: 2 }));
        assert_eq!(svc.cached_forecasts(), 1);
        assert_eq!(svc.stats().forecast_evictions, 1);
        // The baseline was evicted: querying it again is a miss.
        svc.answer(&WhatIfQuery::baseline());
        assert_eq!(svc.stats().forecast_misses, 3);
    }

    #[test]
    fn degrading_a_link_class_slows_the_forecast() {
        let mut svc = SeerService::new(base_spec());
        let base = svc.answer(&WhatIfQuery::baseline()).forecast;
        let slow = svc
            .answer(&WhatIfQuery::one(WhatIf::DegradeLinkClass {
                class: LinkClass::Nvlink,
                factor: 0.25,
            }))
            .forecast;
        assert!(
            slow.iteration_s > base.iteration_s,
            "4x slower NVLink must lengthen the iteration ({} vs {})",
            slow.iteration_s,
            base.iteration_s
        );
    }

    #[test]
    fn crossdc_degrade_without_crossdc_is_the_baseline() {
        let svc = SeerService::new(base_spec());
        let q = WhatIfQuery::one(WhatIf::DegradeLinkClass {
            class: LinkClass::CrossDc,
            factor: 0.5,
        });
        assert_eq!(
            svc.resolve(&q).digest(),
            svc.baseline().digest(),
            "a cross-DC degrade on a single-DC scenario must be a no-op"
        );
    }
}
