//! Operator-timeline construction: the discrete-event heart of Seer.
//!
//! "With operator dependencies and operator execution time, any
//! discrete-event simulation tool can be used to construct the timeline"
//! (paper §4.3). [`schedule`] is that tool: a two-stream-per-device list
//! scheduler over the operator DAG — compute/memory operators serialize on
//! the device's compute stream, communication operators on its comm stream,
//! and data dependencies cross devices through the DAG edges. The pricing
//! of individual operators is abstracted behind [`OpPricer`], so the same
//! scheduler serves the Seer forecast (modeled durations) and the testbed
//! replay (ground-truth durations).

use astral_model::{OpId, OpKind, Operator, OperatorGraph, ParallelismConfig};
use astral_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Execution stream on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stream {
    /// Kernels and HBM traffic.
    Compute,
    /// NCCL communication.
    Comm,
}

/// Which stream an operator occupies.
pub fn stream_of(op: &Operator) -> Stream {
    match op.kind {
        OpKind::Comm { .. } => Stream::Comm,
        _ => Stream::Compute,
    }
}

/// One scheduled operator execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Operator id.
    pub op: OpId,
    /// Operator name.
    pub name: String,
    /// Device (pipeline stage).
    pub device: u32,
    /// Stream occupied.
    pub stream: Stream,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

/// A complete forecast timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// Entries in execution (start-time) order.
    pub entries: Vec<TimelineEntry>,
    /// Iteration makespan.
    pub total: SimDuration,
    /// Busy time of each device's compute stream.
    pub compute_busy: Vec<SimDuration>,
    /// Busy time of each device's comm stream.
    pub comm_busy: Vec<SimDuration>,
}

impl Timeline {
    /// Relative deviation of this timeline's makespan vs a reference
    /// (the paper's accuracy metric: 0.3% for Hunyuan).
    pub fn deviation_vs(&self, reference: &Timeline) -> f64 {
        let a = self.total.as_secs_f64();
        let b = reference.total.as_secs_f64();
        if b <= 0.0 {
            return 0.0;
        }
        (a - b).abs() / b
    }

    /// Fraction of the makespan during which the busiest device's comm
    /// stream is active but its compute stream is idle — "exposed"
    /// communication (the paper observes ~15% of communication time remains
    /// after overlap).
    pub fn exposed_comm_fraction(&self) -> f64 {
        // Approximation from busy totals: exposed ≈ max(0, comm − idle
        // compute headroom) on the critical device.
        let total = self.total.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let mut worst: f64 = 0.0;
        for d in 0..self.compute_busy.len() {
            let comp = self.compute_busy[d].as_secs_f64();
            let comm = self.comm_busy[d].as_secs_f64();
            let exposed = (total - comp).min(comm).max(0.0);
            worst = worst.max(exposed / total);
        }
        worst
    }

    /// Entries of one device, start-ordered.
    pub fn device_entries(&self, device: u32) -> Vec<&TimelineEntry> {
        self.entries.iter().filter(|e| e.device == device).collect()
    }

    /// FNV-1a fingerprint over every entry's (op, device, stream, start,
    /// end) plus the makespan — the bitwise identity of the timeline, used
    /// to pin cached ≡ uncached forecasts and cross-width determinism.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| h = (h ^ x).wrapping_mul(PRIME);
        for e in &self.entries {
            mix(e.op.0 as u64);
            mix(e.device as u64);
            mix(match e.stream {
                Stream::Compute => 0,
                Stream::Comm => 1,
            });
            mix(e.start.as_nanos());
            mix(e.end.as_nanos());
        }
        mix(self.total.as_nanos());
        h
    }

    /// Per-operator-family total durations (for timeline comparisons like
    /// Figure 12): `(base name, seconds)` sorted by descending time.
    pub fn by_operator_family(&self) -> Vec<(String, f64)> {
        let mut acc: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for e in &self.entries {
            let base = e.name.split('@').next().unwrap_or(&e.name).to_string();
            *acc.entry(base).or_insert(0.0) += e.end.saturating_since(e.start).as_secs_f64();
        }
        let mut v: Vec<(String, f64)> = acc.into_iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }
}

/// Prices one operator in seconds.
pub trait OpPricer {
    /// Duration of `op` under parallelism `par`.
    fn duration(&self, op: &Operator, par: &ParallelismConfig) -> f64;
}

/// Schedule a graph: deterministic two-stream list scheduling.
///
/// Ops become ready when all dependencies end; among ready ops, lower ids
/// run first (program order — the graphs encode 1F1B order through chain
/// edges, so this matches the framework's launch order).
pub fn schedule(
    graph: &OperatorGraph,
    par: &ParallelismConfig,
    pricer: &impl OpPricer,
) -> Timeline {
    let n = graph.ops.len();
    let devices = graph.devices as usize;
    let mut indegree = vec![0u32; n];
    let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    for op in &graph.ops {
        for d in &op.deps {
            indegree[op.id.0 as usize] += 1;
            out_edges[d.0 as usize].push(op.id.0);
        }
    }

    let mut ready_time = vec![SimTime::ZERO; n];
    let mut stream_free = vec![[SimTime::ZERO; 2]; devices];
    let mut compute_busy = vec![SimDuration::ZERO; devices];
    let mut comm_busy = vec![SimDuration::ZERO; devices];
    let mut entries = Vec::with_capacity(n);
    let mut heap: BinaryHeap<Reverse<u32>> = (0..n as u32)
        .filter(|&i| indegree[i as usize] == 0)
        .map(Reverse)
        .collect();
    let mut scheduled = 0usize;

    while let Some(Reverse(i)) = heap.pop() {
        let op = &graph.ops[i as usize];
        let stream = stream_of(op);
        let sidx = match stream {
            Stream::Compute => 0,
            Stream::Comm => 1,
        };
        let dev = op.device as usize;
        let dur = SimDuration::from_secs_f64(pricer.duration(op, par).max(0.0));
        let start = ready_time[i as usize].max(stream_free[dev][sidx]);
        let end = start + dur;
        stream_free[dev][sidx] = end;
        match stream {
            Stream::Compute => compute_busy[dev] += dur,
            Stream::Comm => comm_busy[dev] += dur,
        }
        entries.push(TimelineEntry {
            op: op.id,
            name: op.name.clone(),
            device: op.device,
            stream,
            start,
            end,
        });
        scheduled += 1;
        for &j in &out_edges[i as usize] {
            ready_time[j as usize] = ready_time[j as usize].max(end);
            indegree[j as usize] -= 1;
            if indegree[j as usize] == 0 {
                heap.push(Reverse(j));
            }
        }
    }
    assert_eq!(scheduled, n, "graph has a cycle");

    entries.sort_by_key(|e| (e.start, e.op));
    let total = entries
        .iter()
        .map(|e| e.end)
        .max()
        .unwrap_or(SimTime::ZERO)
        .saturating_since(SimTime::ZERO);
    Timeline {
        entries,
        total,
        compute_busy,
        comm_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astral_model::{Collective, GroupKind, OperatorGraph};

    /// A pricer with fixed durations by kind.
    struct Fixed;
    impl OpPricer for Fixed {
        fn duration(&self, op: &Operator, _par: &ParallelismConfig) -> f64 {
            match op.kind {
                OpKind::Compute { .. } => 10.0,
                OpKind::Memory { .. } => 5.0,
                OpKind::Fused { .. } => 12.0,
                OpKind::Comm { .. } => 8.0,
            }
        }
    }

    fn par() -> ParallelismConfig {
        ParallelismConfig::new(1, 2, 1)
    }

    #[test]
    fn serial_chain_adds_up() {
        let mut g = OperatorGraph::new(1);
        let a = g.push("A", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        let b = g.push("B", 0, OpKind::Memory { bytes: 1 }, vec![a]);
        g.push("C", 0, OpKind::Compute { flops: 1.0 }, vec![b]);
        let t = schedule(&g, &par(), &Fixed);
        assert_eq!(t.total, SimDuration::from_secs_f64(25.0));
        assert_eq!(t.entries.len(), 3);
    }

    #[test]
    fn comm_overlaps_independent_compute() {
        // A -> (B compute, C comm independent of B); C depends only on A.
        let mut g = OperatorGraph::new(1);
        let a = g.push("A", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        g.push("B", 0, OpKind::Compute { flops: 1.0 }, vec![a]);
        g.push(
            "C",
            0,
            OpKind::Comm {
                coll: Collective::AllReduce,
                group: GroupKind::Dp,
                group_size: 2,
                bytes: 1,
            },
            vec![a],
        );
        let t = schedule(&g, &par(), &Fixed);
        // B (10) and C (8) overlap after A (10): makespan 20, not 28.
        assert_eq!(t.total, SimDuration::from_secs_f64(20.0));
    }

    #[test]
    fn same_stream_ops_serialize_even_if_independent() {
        let mut g = OperatorGraph::new(1);
        g.push("A", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        g.push("B", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        let t = schedule(&g, &par(), &Fixed);
        assert_eq!(t.total, SimDuration::from_secs_f64(20.0));
    }

    #[test]
    fn cross_device_dependency_transfers_time() {
        let mut g = OperatorGraph::new(2);
        let a = g.push("A", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        let s = g.push(
            "Send",
            0,
            OpKind::Comm {
                coll: Collective::Send,
                group: GroupKind::Pp,
                group_size: 2,
                bytes: 1,
            },
            vec![a],
        );
        let r = g.push(
            "Recv",
            1,
            OpKind::Comm {
                coll: Collective::Recv,
                group: GroupKind::Pp,
                group_size: 2,
                bytes: 1,
            },
            vec![s],
        );
        g.push("B", 1, OpKind::Compute { flops: 1.0 }, vec![r]);
        let t = schedule(&g, &par(), &Fixed);
        // 10 (A) + 8 (send) + 8 (recv) + 10 (B) = 36.
        assert_eq!(t.total, SimDuration::from_secs_f64(36.0));
        let b = t.entries.iter().find(|e| e.name == "B").unwrap();
        assert_eq!(b.device, 1);
        assert_eq!(b.start, SimTime::from_secs_f64(26.0));
    }

    #[test]
    fn busy_accounting_and_family_rollup() {
        let mut g = OperatorGraph::new(1);
        let a = g.push("X@1", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        g.push("X@2", 0, OpKind::Compute { flops: 1.0 }, vec![a]);
        let t = schedule(&g, &par(), &Fixed);
        assert_eq!(t.compute_busy[0], SimDuration::from_secs_f64(20.0));
        assert_eq!(t.comm_busy[0], SimDuration::ZERO);
        let fam = t.by_operator_family();
        assert_eq!(fam, vec![("X".to_string(), 20.0)]);
    }

    #[test]
    fn deviation_metric() {
        let mut g = OperatorGraph::new(1);
        g.push("A", 0, OpKind::Compute { flops: 1.0 }, vec![]);
        let t1 = schedule(&g, &par(), &Fixed);
        let mut t2 = t1.clone();
        t2.total = SimDuration::from_secs_f64(t1.total.as_secs_f64() * 1.003);
        assert!((t2.deviation_vs(&t1) - 0.003).abs() < 1e-9);
    }
}
