//! Basic modeling (paper Appendix E).
//!
//! The atomic operation times Seer starts from before self-correction:
//!
//! * Eq. 1 — matrix multiplication: `T = (2n−1)·m·p / flops`
//! * Eq. 2 — matrix addition: `T = m·n / flops`
//! * Eq. 3 — memory access: `T = m·n·f / hbm_bw`
//! * Eq. 4 — TP communication: `T = b·s·h·f / net_bw`
//! * Eq. 5 — PP communication: `T = (b·s·h·f / tp) / net_bw`
//! * Eq. 6 — DP communication: `T = (P·f / (tp·pp)) / net_bw`
//!
//! `f` is the element width in **bits**; bandwidths are in bits/s for
//! network and the same convention is used for HBM here (callers convert).

/// Eq. 1: time of an `m×n · n×p` matrix multiplication at `flops` FLOP/s.
pub fn t_multiplication(m: u64, n: u64, p: u64, flops: f64) -> f64 {
    debug_assert!(flops > 0.0);
    (2 * n - 1) as f64 * m as f64 * p as f64 / flops
}

/// Eq. 2: time of an `m×n` matrix addition.
pub fn t_addition(m: u64, n: u64, flops: f64) -> f64 {
    debug_assert!(flops > 0.0);
    m as f64 * n as f64 / flops
}

/// Eq. 3: time to move an `m×n` matrix of `f`-bit elements through HBM at
/// `hbm_bw` bits/s.
pub fn t_mem(m: u64, n: u64, f_bits: u32, hbm_bw_bits: f64) -> f64 {
    debug_assert!(hbm_bw_bits > 0.0);
    m as f64 * n as f64 * f_bits as f64 / hbm_bw_bits
}

/// Eq. 4: TP collective time for a `b×s×h` activation of `f`-bit elements.
pub fn t_tp_comm(b: u64, s: u64, h: u64, f_bits: u32, net_bw: f64) -> f64 {
    debug_assert!(net_bw > 0.0);
    (b * s * h) as f64 * f_bits as f64 / net_bw
}

/// Eq. 5: PP point-to-point time (the boundary tensor is sharded over TP).
pub fn t_pp_comm(b: u64, s: u64, h: u64, f_bits: u32, tp_groups: u32, net_bw: f64) -> f64 {
    debug_assert!(net_bw > 0.0 && tp_groups > 0);
    (b * s * h) as f64 * f_bits as f64 / tp_groups as f64 / net_bw
}

/// Eq. 6: DP gradient synchronization time for `model_para_num` parameters
/// sharded over `tp·pp`.
pub fn t_dp_comm(
    model_para_num: u64,
    f_bits: u32,
    tp_groups: u32,
    pp_groups: u32,
    net_bw: f64,
) -> f64 {
    debug_assert!(net_bw > 0.0 && tp_groups > 0 && pp_groups > 0);
    model_para_num as f64 * f_bits as f64 / (tp_groups as f64 * pp_groups as f64) / net_bw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matmul() {
        // 2×3 · 3×4 at 1 FLOP/s: (2·3−1)·2·4 = 40 s.
        assert_eq!(t_multiplication(2, 3, 4, 1.0), 40.0);
        // Scaling with flops.
        assert_eq!(t_multiplication(2, 3, 4, 10.0), 4.0);
    }

    #[test]
    fn eq2_addition() {
        assert_eq!(t_addition(5, 6, 2.0), 15.0);
    }

    #[test]
    fn eq3_memory() {
        // 1024×1024 fp16 through 1 Tbit/s: 2²⁰·16/1e12 s.
        let t = t_mem(1024, 1024, 16, 1e12);
        assert!((t - (1 << 20) as f64 * 16.0 / 1e12).abs() < 1e-18);
    }

    #[test]
    fn eq4_to_eq6_relationships() {
        let (b, s, h, f) = (4u64, 2048u64, 8192u64, 16u32);
        let bw = 400e9;
        let tp = t_tp_comm(b, s, h, f, bw);
        let pp = t_pp_comm(b, s, h, f, 8, bw);
        assert!((tp / pp - 8.0).abs() < 1e-9, "PP is the TP tensor / tp");
        let dp = t_dp_comm(175_000_000_000, f, 8, 16, bw);
        assert!(dp > 0.0);
        // DP moves parameters, independent of batch.
        assert_eq!(t_dp_comm(100, f, 2, 2, bw), 100.0 * 16.0 / 4.0 / bw);
    }

    #[test]
    fn times_scale_inversely_with_bandwidth() {
        assert_eq!(
            t_tp_comm(1, 1024, 1024, 16, 100e9) / t_tp_comm(1, 1024, 1024, 16, 400e9),
            4.0
        );
    }
}
