//! Workspace-level integration tests: whole-system flows through the
//! public `astral` API only.

use astral::core::{AstralInfrastructure, PlacementPolicy};
use astral::model::{DpSync, GroupKind, ModelConfig, ParallelismConfig};
use astral::monitor::{Analyzer, Fault, ScenarioConfig};
use astral::seer::{GpuSpec, NetworkSpec, Seer, SeerConfig};
use astral::topo::{build_astral, AstralParams, HostId};

fn small_model() -> ModelConfig {
    let mut m = ModelConfig::llama3_8b();
    m.layers = 4;
    m.hidden = 1024;
    m.heads = 8;
    m.kv_heads = 2;
    m.ffn_hidden = 4096;
    m.vocab = 16000;
    m.seq_len = 1024;
    m
}

/// Deploy → place → evaluate → forecast: the full provider loop.
#[test]
fn deploy_place_evaluate_forecast() {
    let infra = AstralInfrastructure::deploy(AstralParams::sim_small());
    let model = small_model();
    let mut par = ParallelismConfig::new(4, 2, 4);
    par.microbatches = 4;

    let placement = infra.place(par.world(), PlacementPolicy::BlockLocal);
    let eval = infra.evaluate_training(&model, &par, placement);
    assert!(eval.iteration_s > 0.0);
    assert_eq!(eval.pods_touched, 1);

    // Seer calibrated against the same infrastructure must land close to
    // the measured run.
    let seer = infra.calibrated_seer(&par, 7);
    let f = seer.forecast_training(&model, &par);
    let dev = (f.iteration_s - eval.iteration_s).abs() / eval.iteration_s;
    assert!(
        dev < 0.15,
        "calibrated forecast {:.4}s vs measured {:.4}s ({:.1}% off)",
        f.iteration_s,
        eval.iteration_s,
        dev * 100.0
    );
}

/// The diagnosis loop catches an injected fault end to end through the
/// facade.
#[test]
fn fault_injection_to_diagnosis() {
    let infra = AstralInfrastructure::deploy(AstralParams::sim_small());
    for (fault, expect_host) in [
        (Fault::GpuXid { host: HostId(3) }, Some(HostId(3))),
        (
            Fault::PcieDegrade {
                host: HostId(1),
                factor: 0.25,
            },
            Some(HostId(1)),
        ),
        (Fault::UserCodeBug, None),
    ] {
        let d = infra.diagnose_fault(fault, &ScenarioConfig::default());
        match expect_host {
            Some(h) => assert_eq!(d.culprit, astral::monitor::Culprit::Host(h)),
            None => assert_eq!(d.culprit, astral::monitor::Culprit::Software),
        }
    }
}

/// Cross-DC planning: the Seer recommendation engine produces the paper's
/// ordering — ZeRO worst, TP catastrophic, PP/DP tolerable.
#[test]
fn crossdc_recommendation_ordering() {
    let model = small_model();
    let mut par = ParallelismConfig::new(4, 2, 8);
    par.microbatches = 4;
    let seer = |net: NetworkSpec, par: &ParallelismConfig| {
        Seer::new(SeerConfig {
            gpu: GpuSpec::h100(),
            net,
            calibration: astral::seer::Calibration::ideal(),
        })
        .forecast_training(&model, par)
        .iteration_s
    };
    let base = seer(NetworkSpec::astral(), &par);
    let tp = seer(
        NetworkSpec::astral().with_crossdc(GroupKind::Tp, 8.0, 300.0),
        &par,
    );
    let pp = seer(
        NetworkSpec::astral().with_crossdc(GroupKind::Pp, 8.0, 300.0),
        &par,
    );
    let dp = seer(
        NetworkSpec::astral().with_crossdc(GroupKind::Dp, 8.0, 300.0),
        &par,
    );
    let mut zpar = par;
    zpar.zero = DpSync::Zero3;
    let zero = seer(
        NetworkSpec::astral().with_crossdc(GroupKind::Dp, 8.0, 300.0),
        &zpar,
    );
    let zero_base = seer(NetworkSpec::astral(), &zpar);

    assert!(tp > pp && tp > dp, "TP must be the worst classic choice");
    assert!(
        (zero / zero_base) > (dp / base),
        "ZeRO-DP must degrade more than plain DP"
    );
    // Absolute PP tolerance is a property of realistic per-stage compute
    // (validated in the fig18 harness: 1.1% at 8:1); at toy scale the
    // 1.5 ms long-haul latency dominates, so only the ordering is asserted
    // here: PP must still beat TP by a wide margin.
    assert!(tp / pp > 3.0, "TP should dwarf PP cross-DC: {}", tp / pp);
}

/// Dual-ToR (P3): with single-ToR wiring an optical failure severs hosts;
/// with dual-ToR it only halves NIC bandwidth — flows keep completing.
#[test]
fn dual_tor_survives_optical_failure() {
    use astral::net::{FlowSpec, NetConfig, NetworkSim, QpContext};
    use astral::topo::GpuId;

    let mut single = AstralParams::sim_small();
    single.tors_per_rail = 1;
    // Keep ToR port math valid: with one port per NIC the uplink budget
    // halves too.
    single.nic_port_gbps = 400.0;
    let dual = AstralParams::sim_small();

    for (params, survives) in [(single, false), (dual, true)] {
        let topo = build_astral(&params);
        let mut sim = NetworkSim::new(&topo, NetConfig::default());
        let src = topo.gpu_nic(GpuId(0));
        let dst = topo.gpu_nic(GpuId(32));
        // Fail ONE of the source NIC's uplinks (one optical module).
        let first = topo.out_links(src)[0];
        sim.fail_link_at(astral::sim::SimTime::ZERO, first);
        sim.run_until(astral::sim::SimTime::from_micros(1));

        // Try several sports: with dual ToR, some hash onto the surviving
        // port; with single ToR every path dies.
        let mut any_ok = false;
        for sport in 49152..49152 + 16 {
            let qp = sim.register_qp(src, dst, sport, QpContext::anonymous());
            if let Some(id) = sim.inject(FlowSpec {
                qp,
                bytes: 1 << 20,
                weight: 1.0,
            }) {
                sim.run_until_idle();
                if sim.stats(id).state == astral::net::FlowState::Done {
                    any_ok = true;
                }
            }
        }
        assert_eq!(
            any_ok, survives,
            "single-ToR should sever, dual-ToR should survive"
        );
    }
}

/// The offline toolchain prevents fail-on-start: wiring mistakes and config
/// drift are caught before delivery.
#[test]
fn offline_checks_catch_predelivery_problems() {
    use astral::monitor::offline::{
        check_config_consistency, gpu_burn, verify_wiring, CablePlan, HostConfig, StressResult,
    };
    use astral::monitor::HostHealth;
    use astral::sim::SimRng;

    let topo = build_astral(&AstralParams::sim_small());
    let plan = CablePlan::from_topology(&topo);
    let mut rng = SimRng::new(99);
    let observed = plan.with_swaps(8, &mut rng);
    let mistakes = verify_wiring(&plan, &observed);
    assert!(!mistakes.is_empty(), "swapped cables must be detected");

    let mut configs: Vec<HostConfig> = (0..32).map(|h| HostConfig::standard(HostId(h))).collect();
    configs[9].nccl_version = "2.18.1".into();
    let devs = check_config_consistency(&configs);
    assert_eq!(devs.len(), 1);
    assert_eq!(devs[0].host, HostId(9));

    let mut sick = HostHealth::healthy(HostId(3));
    sick.gpu_xid = Some(79);
    assert_eq!(gpu_burn(&sick), StressResult::Fail);
}

/// Chakra-like trace interchange: a generated graph round-trips through
/// JSON and forecasts identically.
#[test]
fn chakra_trace_forecast_round_trip() {
    use astral::model::chakra;
    let model = small_model();
    let mut par = ParallelismConfig::new(2, 2, 2);
    par.microbatches = 2;
    let graph = astral::model::build_training_iteration(&model, &par);
    let json = chakra::to_json(&graph);
    let back = chakra::from_json(&json).expect("round trip");

    let seer = Seer::new(SeerConfig::h100_astral_basic());
    let a = seer.forecast_graph(&graph, &par);
    let b = seer.forecast_graph(&back, &par);
    assert_eq!(a.total, b.total);
}

/// The ECMP controller loop drains congestion on the real simulator.
#[test]
fn controller_drains_persistent_collisions() {
    use astral::net::{EcmpController, FlowSpec, NetConfig, NetworkSim, PlannedFlow, QpContext};
    use astral::topo::GpuId;

    let params = AstralParams::sim_small();
    let topo = build_astral(&params);
    let gpb = params.hosts_per_block as u32 * params.rails as u32;
    let ctl = EcmpController::default();
    let mut flows: Vec<PlannedFlow> = (0..8)
        .map(|i| PlannedFlow {
            src: topo.gpu_nic(GpuId(i * params.rails as u32)),
            dst: topo.gpu_nic(GpuId(gpb + i * params.rails as u32)),
            bytes: 64 << 20,
            sport: 50_000,
        })
        .collect();
    let mut first_ecn = None;
    let mut last_ecn = 0;
    for _ in 0..4 {
        let mut sim = NetworkSim::new(&topo, NetConfig::default());
        for f in &flows {
            let qp = sim.register_qp(f.src, f.dst, f.sport, QpContext::anonymous());
            sim.inject(FlowSpec {
                qp,
                bytes: f.bytes,
                weight: 1.0,
            })
            .expect("routable");
        }
        sim.run_until_idle();
        let ecn: u64 = sim.telemetry().link.iter().map(|c| c.ecn_marks).sum();
        first_ecn.get_or_insert(ecn);
        last_ecn = ecn;
        let hot: Vec<_> = sim
            .telemetry()
            .hottest_links_by_ecn(4)
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        ctl.rebalance(&topo, sim.router(), &sim.config().hasher, &mut flows, &hot);
    }
    assert!(
        last_ecn < first_ecn.unwrap() || first_ecn == Some(0),
        "controller failed to drain ECN: {first_ecn:?} → {last_ecn}"
    );
}

/// The analyzer never panics on an arbitrary (empty/degenerate) snapshot.
#[test]
fn analyzer_is_total_on_degenerate_input() {
    use astral::monitor::{CannedProber, Snapshot};
    let d = Analyzer::new().diagnose(&Snapshot::default(), &CannedProber::default());
    assert_eq!(d.culprit, astral::monitor::Culprit::Unknown);
}

/// The closed-loop failure lifecycle engine: one run is hit by all three
/// Figure-7 fault classes (transient mid-fabric flap, optical dual-ToR
/// outage, hard host death) and recovers each — ECMP reroute, ToR
/// failover, cordon + spare + checkpoint restart — keeping goodput above
/// 0.8. The identical script with recovery disabled aborts. Deterministic
/// on the seeded clock.
#[test]
fn failure_lifecycle_recovers_three_fault_classes() {
    use astral::core::{
        run_training, FaultClass, FaultScript, InjectedFault, MitigationAction, RecoveryPolicy,
        TrainingJobSpec,
    };
    use astral::sim::SimDuration;

    let topo = build_astral(&AstralParams::sim_small());
    let spec = TrainingJobSpec {
        iters: 30,
        comp_s: 1.0,
        ..TrainingJobSpec::default()
    };
    let script = FaultScript {
        faults: vec![
            InjectedFault::TransientLink {
                at_iter: 3,
                heal_after: SimDuration::from_millis(30),
            },
            InjectedFault::OpticalUplink {
                at_iter: 12,
                host_index: 5,
            },
            InjectedFault::HostFailure {
                at_iter: 21,
                host_index: 2,
            },
        ],
    };

    let r = run_training(&topo, &RecoveryPolicy::default(), &spec, &script);
    assert!(r.completed, "incidents: {:?}", r.incidents);
    assert_eq!(r.iters_done, 30);
    assert!(r.goodput() > 0.8, "goodput {}", r.goodput());
    // Every injection had a non-empty blast radius the engine then healed.
    assert_eq!(r.injections.len(), 3);
    assert!(r.injections.iter().all(|i| i.blast_radius > 0));
    // All three classes were diagnosed, each with its own mitigation.
    let classes: Vec<FaultClass> = r.incidents.iter().map(|i| i.class).collect();
    assert!(classes.contains(&FaultClass::TransientLink));
    assert!(classes.contains(&FaultClass::OpticalDualTor));
    assert!(classes.contains(&FaultClass::HardHost));
    assert!(r
        .incidents
        .iter()
        .any(|i| i.action == MitigationAction::EcmpReroute));
    assert!(r
        .incidents
        .iter()
        .any(|i| i.action == MitigationAction::TorFailover));
    assert!(r
        .incidents
        .iter()
        .any(|i| i.action == MitigationAction::RestartFromCheckpoint && !i.cordoned.is_empty()));
    assert!(r.mttr_s().unwrap() > 0.0);
    assert!(r.mttlf_s().unwrap() > 0.0);

    // Same seed, recovery disabled: the first fault ends the job.
    let ablation = run_training(&topo, &RecoveryPolicy::disabled(), &spec, &script);
    assert!(!ablation.completed);
    assert_eq!(
        ablation.incidents.last().unwrap().action,
        MitigationAction::Abort
    );
    assert!(ablation.useful_s < r.useful_s);

    // Determinism: the exact same tuple reproduces the exact same report.
    let again = run_training(&topo, &RecoveryPolicy::default(), &spec, &script);
    assert_eq!(again.goodput(), r.goodput());
    assert_eq!(again.incidents.len(), r.incidents.len());
}
