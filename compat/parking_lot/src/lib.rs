//! Offline API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice it uses: [`RwLock`] and [`Mutex`] with
//! parking_lot's non-poisoning `lock()/read()/write()` API.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
