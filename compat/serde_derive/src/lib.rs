//! Derive macros for the vendored `serde` stub.
//!
//! The build environment has no network access, so `syn`/`quote` are
//! unavailable; the item is parsed directly from the `proc_macro` token
//! stream. Supported shapes cover everything this workspace derives:
//! non-generic named-field structs, tuple structs, and enums with unit,
//! tuple, and struct variants. The only recognized field attribute is
//! `#[serde(skip)]` (omit on serialize, `Default::default()` on
//! deserialize), matching the one use in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consume one `#[...]` attribute (the leading `#` was peeked by the
/// caller); returns true when it is `#[serde(skip)]`-like.
fn eat_attr(iter: &mut Iter) -> bool {
    iter.next(); // '#'
    if let Some(TokenTree::Group(g)) = iter.peek() {
        if g.delimiter() == Delimiter::Bracket {
            let mut is_serde = false;
            let mut skip = false;
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = inner.next() {
                is_serde = id.to_string() == "serde";
            }
            if is_serde {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    for tt in args.stream() {
                        if let TokenTree::Ident(id) = tt {
                            let s = id.to_string();
                            if s == "skip" || s == "skip_serializing" || s == "skip_deserializing" {
                                skip = true;
                            }
                        }
                    }
                }
            }
            iter.next(); // the [...] group
            return skip;
        }
    }
    false
}

/// Consume leading attributes, returning whether any was a skip marker.
fn eat_attrs(iter: &mut Iter) -> bool {
    let mut skip = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        skip |= eat_attr(iter);
    }
    skip
}

/// Consume an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_vis(iter: &mut Iter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Skip a type (or any expression) up to a top-level `,`, tracking `<...>`
/// nesting depth; consumes the comma if present.
fn skip_to_comma(iter: &mut Iter) {
    let mut angle = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

/// Parse `name: Type, ...` named fields from a brace group's stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut iter);
        eat_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        // ':'
        iter.next();
        skip_to_comma(&mut iter);
        fields.push(Field { name, skip });
    }
    fields
}

/// Count `Type, ...` tuple fields in a paren group's stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut n = 0;
    while iter.peek().is_some() {
        eat_attrs(&mut iter);
        eat_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_to_comma(&mut iter);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter: Iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = g.stream();
                iter.next();
                VariantShape::Tuple(count_tuple_fields(s))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = g.stream();
                iter.next();
                VariantShape::Struct(parse_named_fields(s))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        skip_to_comma(&mut iter);
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter: Iter = input.into_iter().peekable();
    eat_attrs(&mut iter);
    eat_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type {name} is not supported by the vendored serde derive"
        ));
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            })
        }
        (k, body) => Err(format!("unsupported item shape: {k} {name} {body:?}")),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out += &format!(
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ \
                 let mut __fields: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                 ::std::vec::Vec::new(); "
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                out += &format!(
                    "__fields.push((::serde::Value::Str(::std::string::String::from(\"{fname}\")), \
                     ::serde::Serialize::to_value(&self.{fname}))); "
                );
            }
            out += "::serde::Value::Map(__fields) } }";
        }
        Item::TupleStruct { name, arity } => {
            out += &format!(
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ "
            );
            if *arity == 1 {
                out += "::serde::Serialize::to_value(&self.0)";
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                out += &format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "));
            }
            out += " } }";
        }
        Item::Enum { name, variants } => {
            out += &format!(
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ match self {{ "
            );
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        out += &format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")), "
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        out += &format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from(\"{vname}\")), \
                             {inner})]), ",
                            binds.join(", ")
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut body = String::from(
                            "{ let mut __m: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                             ::std::vec::Vec::new(); ",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = &f.name;
                            body += &format!(
                                "__m.push((::serde::Value::Str(\
                                 ::std::string::String::from(\"{fname}\")), \
                                 ::serde::Serialize::to_value({fname}))); "
                            );
                        }
                        body += &format!(
                            "::serde::Value::Map(::std::vec![(::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")), \
                             ::serde::Value::Map(__m))]) }}"
                        );
                        out += &format!("{name}::{vname} {{ {} }} => {body}, ", binds.join(", "));
                    }
                }
            }
            out += "} } }";
        }
    }
    out
}

fn gen_named_field_inits(container: &str, fields: &[Field], map_expr: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            out += &format!("{fname}: ::std::default::Default::default(), ");
        } else {
            out += &format!(
                "{fname}: match ::serde::find_field({map_expr}, \"{fname}\") {{ \
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"missing field `{fname}` in {container}\")) }}, "
            );
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out += &format!(
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                 let __m = match __v {{ ::serde::Value::Map(__m) => __m, \
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected map for {name}\")) }}; \
                 ::std::result::Result::Ok({name} {{ "
            );
            out += &gen_named_field_inits(name, fields, "__m");
            out += "}) } }";
        }
        Item::TupleStruct { name, arity } => {
            out += &format!(
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ "
            );
            if *arity == 1 {
                out += &format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                );
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                out += &format!(
                    "match __v {{ ::serde::Value::Seq(__s) if __s.len() == {arity} => \
                     ::std::result::Result::Ok({name}({})), \
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected {arity}-element sequence for {name}\")) }}",
                    elems.join(", ")
                );
            }
            out += " } }";
        }
        Item::Enum { name, variants } => {
            out += &format!(
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                 match __v {{ "
            );
            // Unit variants arrive as bare strings.
            out += "::serde::Value::Str(__s) => match __s.as_str() { ";
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    let vname = &v.name;
                    out += &format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}), ");
                }
            }
            out += &format!(
                "_ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown unit variant for {name}\")) }}, "
            );
            // Data variants arrive as single-entry maps.
            out += "::serde::Value::Map(__pairs) if __pairs.len() == 1 => { \
                    let (__k, __val) = &__pairs[0]; \
                    let __k = match __k { ::serde::Value::Str(__s) => __s.as_str(), \
                    _ => return ::std::result::Result::Err(::serde::Error::custom(\
                    \"expected string variant key\")) }; match __k { ";
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(n) => {
                        if *n == 1 {
                            out += &format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__val)?)), "
                            );
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            out += &format!(
                                "\"{vname}\" => match __val {{ \
                                 ::serde::Value::Seq(__s) if __s.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vname}({})), \
                                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected {n}-element sequence for variant {vname}\")) }}, ",
                                elems.join(", ")
                            );
                        }
                    }
                    VariantShape::Struct(fields) => {
                        out += &format!(
                            "\"{vname}\" => {{ let __vm = match __val {{ \
                             ::serde::Value::Map(__m) => __m, \
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected map for variant {vname}\")) }}; \
                             ::std::result::Result::Ok({name}::{vname} {{ "
                        );
                        out += &gen_named_field_inits(vname, fields, "__vm");
                        out += "}) }, ";
                    }
                }
            }
            out += &format!(
                "_ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")) }} }}, "
            );
            out += &format!(
                "_ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or map for {name}\")) }} }} }}"
            );
        }
    }
    out
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| panic!("vendored serde derive produced invalid code: {e}")),
        Err(msg) => format!("::std::compile_error!(\"{msg}\");")
            .parse()
            .unwrap(),
    }
}

/// Derive `serde::Serialize` (vendored stub data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (vendored stub data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
