//! Offline API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses: the
//! [`RngCore`] trait (implemented by `astral_sim::SimRng`) and the
//! [`Error`] type returned by `try_fill_bytes`.

use std::fmt;

/// Error type for fallible RNG operations.
///
/// The deterministic generators in this workspace are infallible, so this
/// type is never constructed; it exists to satisfy the `try_fill_bytes`
/// signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Construct an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: the subset of `rand::RngCore`
/// used by this workspace.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, reporting failure as an error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn trait_object_safe_and_usable() {
        let mut r = Counter(1);
        let mut buf = [0u8; 12];
        r.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
        let _: &mut dyn RngCore = &mut r;
    }
}
