//! Offline API-compatible subset of `criterion`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple best-of-samples wall-clock
//! measurement printed to stdout — no statistics, plots, or baselines.

use std::time::Instant;

/// Prevent the optimizer from eliding a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration measurement driver passed to bench closures.
pub struct Bencher {
    iters: u64,
    best_ns: f64,
}

impl Bencher {
    /// Time `f`, keeping the best per-iteration estimate across batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then timed batches.
        black_box(f());
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_secs_f64() * 1e9 / self.iters as f64;
            if per_iter < self.best_ns {
                self.best_ns = per_iter;
            }
        }
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples.max(1),
        best_ns: f64::INFINITY,
    };
    f(&mut b);
    if b.best_ns.is_finite() {
        println!("{name:<48} {:>14.1} ns/iter", b.best_ns);
    } else {
        println!("{name:<48} (no measurement)");
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration batch size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.prefix, name),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("noop2", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
