//! Offline API-compatible subset of `serde_json` over the vendored
//! [`serde::Value`] data model.
//!
//! Rendering matches real serde_json where the workspace depends on it:
//! objects for string-keyed maps, arrays for sequences, shortest
//! round-trippable float formatting (`f64`'s `Display`). Maps with
//! non-string keys — which real serde_json rejects — render as arrays of
//! `[key, value]` pairs; the vendored `serde` accepts that shape back, so
//! typed round trips still work.

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // f64's Display is the shortest string that parses back to the
            // same value, so typed round trips are exact.
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            let all_string_keys = entries.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            if all_string_keys {
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_value(out, k, indent, level + 1)?;
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, level + 1)?;
                }
                newline_indent(out, indent, level);
                out.push('}');
            } else {
                // Non-string keys: render as [[key, value], ...].
                out.push('[');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    out.push('[');
                    write_value(out, k, indent, level + 1)?;
                    out.push(',');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, level + 1)?;
                    out.push(']');
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
        }
    }
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((Value::Str(key), val));
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a paired \uXXXX.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid code point"))?,
                                );
                            }
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so decode
                    // from the byte position before the consumed lead byte.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(if n == 0 {
                        Value::U64(0)
                    } else {
                        Value::I64(-n)
                    });
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-17").unwrap(), -17);
        assert_eq!(from_str::<f64>("0.125").unwrap(), 0.125);
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e300, -2.5e-7, 123_456_789.123_456_79] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let back: Vec<Vec<u32>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);

        let m: HashMap<String, u32> = [("a".to_string(), 1), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        let back: HashMap<String, u32> = from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);

        // Non-string keys round-trip through the pair-array encoding.
        let m: HashMap<u32, String> = [(7, "x".to_string())].into_iter().collect();
        let back: HashMap<u32, String> = from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, String)> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
