//! Offline API-compatible subset of `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, numeric range strategies, tuple
//! composition, `prop::collection::{vec, btree_set}`, `any::<T>()`, and
//! the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, acceptable for this workspace's tests:
//! cases are generated from a fixed per-test seed (deterministic across
//! runs, no `PROPTEST_` env handling) and failures are reported by the
//! standard panic machinery without input shrinking.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Error type of a property body (`return Ok(())` / `prop_assume` style
/// early exits unify against this).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Test-runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive a stable seed from the property name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n) without modulo bias worth worrying about here.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad-magnitude values.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (`prop::collection` in the prelude).
pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with sizes in `size` (best effort when
    /// the element universe is smaller than the requested size).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 + target * 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests: each generated case binds the patterns from
/// their strategies and runs the body; assertion failures panic with the
/// standard test machinery (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // Property bodies may `return Ok(())` to skip a case,
                    // mirroring real proptest's Result-typed bodies.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property {} failed: {:?}", stringify!($name), e);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(5u64..=5), &mut rng);
            assert_eq!(w, 5);
            let x = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn collections_and_combinators() {
        let mut rng = TestRng::new(7);
        let s = prop::collection::vec(0u32..10, 2..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&n));
        }
        let fm = (1usize..4).prop_flat_map(|n| prop::collection::btree_set(0u32..10, n..=n));
        for _ in 0..100 {
            let set = Strategy::generate(&fm, &mut rng);
            assert!(!set.is_empty() && set.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in any::<u64>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
            prop_assert_eq!(a + b, b + a);
        }
    }
}
