//! Offline API-compatible subset of `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde: a self-describing [`Value`] data
//! model, [`Serialize`]/[`Deserialize`] traits over it, impls for the std
//! types the workspace serializes, and derive macros re-exported from the
//! sibling `serde_derive` stub. The vendored `serde_json` renders [`Value`]
//! to JSON text and back.
//!
//! Representation choices mirror real serde's JSON behavior where the
//! workspace depends on it: structs are maps keyed by field name, newtype
//! structs are transparent, unit enum variants are strings, data-carrying
//! variants are single-entry maps, and `#[serde(skip)]` fields are omitted
//! and default-initialized on the way back in.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value: the stub's data model.
///
/// Maps preserve insertion order and allow arbitrary (non-string) keys;
/// `serde_json` decides how to render them.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative ints normalize to `U64`).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value pairs in insertion order.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Borrow as a string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as map entries, if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// Find a struct field by name in serialized map entries.
pub fn find_field<'a>(entries: &'a [(Value, Value)], name: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
        .map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into the [`Value`] data model.
pub trait Serialize {
    /// Serialize into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! sint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
sint_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Option / collections / tuples
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(it: impl Iterator<Item = &'a T>) -> Value {
    Value::Seq(it.map(|x| x.to_value()).collect())
}

fn value_to_seq<T: Deserialize>(v: &Value) -> Result<Vec<T>, Error> {
    match v {
        Value::Seq(items) => items.iter().map(T::from_value).collect(),
        _ => Err(Error::custom("expected sequence")),
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        value_to_seq(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = value_to_seq::<T>(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq(v)?.into())
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq::<T>(v)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq::<T>(v)?.into_iter().collect())
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    it: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Map(it.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

/// Accept either a native `Map` or (as produced by a JSON round trip of a
/// non-string-keyed map) a `Seq` of `[key, value]` pairs.
fn value_to_pairs<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|item| match item {
                Value::Seq(pair) if pair.len() == 2 => {
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                }
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect(),
        _ => Err(Error::custom("expected map")),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_pairs::<K, V>(v)?.into_iter().collect())
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Seq(s) if s.len() == LEN => {
                        Ok(($($t::from_value(&s[$n])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple sequence")),
                }
            }
        }
    )*};
}
tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let m: HashMap<u32, Vec<u64>> = [(1, vec![2, 3]), (4, vec![])].into_iter().collect();
        let back: HashMap<u32, Vec<u64>> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);

        let t = (1u32, "x".to_string(), -2i32);
        let back: (u32, String, i32) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }
}
