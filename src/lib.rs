//! # astral — reproduction of the Astral datacenter infrastructure
//!
//! A from-scratch Rust reproduction of *"Astral: A Datacenter
//! Infrastructure for Large Language Model Training at Scale"* (SIGCOMM
//! 2025): the same-rail network architecture, the full-stack monitoring
//! system with hierarchical root-cause analysis, the Seer operator-granular
//! performance forecaster, and the physical plant (distributed HVDC power,
//! air–liquid integrated cooling) — plus the baselines and the benchmark
//! harness that regenerates every figure and table of the paper's
//! evaluation.
//!
//! The workspace crates are re-exported under their short names:
//!
//! | module | contents |
//! |---|---|
//! | [`sim`] | discrete-event engine, RNG, statistics |
//! | [`exec`] | deterministic parallel execution (`ASTRAL_THREADS`) |
//! | [`topo`] | Astral + baseline fabrics, ECMP routing, wiring verify |
//! | [`net`] | flow-level RDMA simulation, ECMP controller, telemetry |
//! | [`collectives`] | NCCL-style schedules and the collective runner |
//! | [`model`] | LLM configs, parallelism, operator graphs |
//! | [`seer`] | forecasting, calibration, the cached what-if service |
//! | [`monitor`] | layered telemetry, analyzer, failure injection |
//! | [`power`] | HVDC, power traces, renewables |
//! | [`cooling`] | airflow thermal model, PUE |
//! | [`core`] | the orchestration facade |
//! | [`fleet`] | multi-tenant fleet scheduler: workloads, placement, spare pool |
//! | [`trace`] | structured event trace: records, ring buffer, JSONL, fingerprints |
//!
//! Start with [`core::AstralInfrastructure`] or the `examples/` directory.

pub use astral_collectives as collectives;
pub use astral_cooling as cooling;
pub use astral_core as core;
pub use astral_exec as exec;
pub use astral_fleet as fleet;
pub use astral_model as model;
pub use astral_monitor as monitor;
pub use astral_net as net;
pub use astral_power as power;
pub use astral_seer as seer;
pub use astral_sim as sim;
pub use astral_topo as topo;
pub use astral_trace as trace;
