//! Failure diagnosis walkthrough: the paper's §3.3 case study (Figure 9)
//! as a runnable scenario.
//!
//! A host's PCIe link trains below its rated width; its NIC drain chokes;
//! PFC pauses spread head-of-line loss to innocent flows; training slows
//! cluster-wide. The hierarchical analyzer drills from the NCCL timeline
//! through QP rates and INT per-hop delays down to the sick host.
//!
//! ```sh
//! cargo run --release --example failure_diagnosis
//! ```

use astral::monitor::{run_fault_scenario, Analyzer, Fault, ScenarioConfig};
use astral::topo::{build_astral, AstralParams, HostId};

fn main() {
    let topo = build_astral(&AstralParams::sim_small());

    println!("=== injecting: PCIe degradation on host3 (drain at 20%) ===\n");
    let outcome = run_fault_scenario(
        &topo,
        Fault::PcieDegrade {
            host: HostId(3),
            factor: 0.2,
        },
        &ScenarioConfig::default(),
    );

    // The four panels of Figure 9, from the harvested snapshot:
    let snap = &outcome.snapshot;
    println!("--- (a) NCCL timeline: per-rank comm time ---");
    for r in &snap.ranks {
        println!(
            "  {}: iter {}/{}  comp {:.3}s  comm {:.3}s",
            r.host,
            r.iters_done,
            snap.job.as_ref().unwrap().expected_iters,
            r.comp_time_s,
            r.comm_time_s
        );
    }

    println!("\n--- (b) QP ms-level rates (fraction of 200G port) ---");
    let mut rates: Vec<_> = snap.qp_rate_frac.iter().collect();
    rates.sort_by_key(|&(qp, _)| *qp);
    for (qp, frac) in rates.iter().take(8) {
        println!(
            "  {qp}: {:5.1}%{}",
            **frac * 100.0,
            if **frac < 0.5 {
                "   <-- below 50% threshold"
            } else {
                ""
            }
        );
    }

    println!("\n--- (c/d) PFC pause counters (top links) ---");
    let mut pfc: Vec<_> = snap.link_pfc.iter().collect();
    pfc.sort_by_key(|&(_, ns)| std::cmp::Reverse(*ns));
    for (l, ns) in pfc.iter().take(4) {
        println!("  link {l}: {:.3} ms of pause", **ns as f64 / 1e6);
    }

    println!("\n=== hierarchical analyzer ===\n");
    let diagnosis = Analyzer::new().diagnose(snap, &outcome.prober);
    println!("manifestation : {}", diagnosis.manifestation);
    println!("cause         : {}", diagnosis.cause);
    println!("culprit       : {:?}", diagnosis.culprit);
    println!("queries issued: {}", diagnosis.queries);
    println!("\ndrill-down evidence:");
    for (i, e) in diagnosis.evidence.iter().enumerate() {
        println!("  {}. {e}", i + 1);
    }

    // Time-to-locate comparison (Figure 10's axis).
    let manual = astral::monitor::mttlf::manual_locate_time_s(
        &astral::monitor::mttlf::ManualCostModel::default(),
        diagnosis.manifestation,
        1024,
    );
    let auto = astral::monitor::mttlf::analyzer_locate_time_s(
        &astral::monitor::mttlf::AnalyzerCostModel::default(),
        &diagnosis,
    );
    println!(
        "\nMTTLF: manual bisection ≈ {:.1} h; analyzer ≈ {:.1} min ({}× faster)",
        manual / 3600.0,
        auto / 60.0,
        (manual / auto) as u64
    );
}
