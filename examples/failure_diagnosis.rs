//! Failure diagnosis walkthrough: the paper's §3.3 case study (Figure 9)
//! as a runnable scenario.
//!
//! A host's PCIe link trains below its rated width; its NIC drain chokes;
//! PFC pauses spread head-of-line loss to innocent flows; training slows
//! cluster-wide. The hierarchical analyzer drills from the NCCL timeline
//! through QP rates and INT per-hop delays down to the sick host.
//!
//! Act two is the gray-failure counterpart (DESIGN.md §11): a link that
//! flaps instead of dying. The suspicion-scored detector classifies the
//! recurrent edges as a flapper, the recovery engine steers around it and
//! places it under probation, and a quiet probe window readmits it —
//! one decisive mitigation instead of a fresh alarm per flap.
//!
//! ```sh
//! cargo run --release --example failure_diagnosis
//! ```

use astral::core::{
    run_training, FaultScript, InjectedFault, MitigationAction, RecoveryPolicy, TrainingJobSpec,
};
use astral::monitor::{run_fault_scenario, Analyzer, Fault, ScenarioConfig};
use astral::topo::{build_astral, AstralParams, HostId};

fn main() {
    let topo = build_astral(&AstralParams::sim_small());

    println!("=== injecting: PCIe degradation on host3 (drain at 20%) ===\n");
    let outcome = run_fault_scenario(
        &topo,
        Fault::PcieDegrade {
            host: HostId(3),
            factor: 0.2,
        },
        &ScenarioConfig::default(),
    );

    // The four panels of Figure 9, from the harvested snapshot:
    let snap = &outcome.snapshot;
    println!("--- (a) NCCL timeline: per-rank comm time ---");
    for r in &snap.ranks {
        println!(
            "  {}: iter {}/{}  comp {:.3}s  comm {:.3}s",
            r.host,
            r.iters_done,
            snap.job.as_ref().unwrap().expected_iters,
            r.comp_time_s,
            r.comm_time_s
        );
    }

    println!("\n--- (b) QP ms-level rates (fraction of 200G port) ---");
    let mut rates: Vec<_> = snap.qp_rate_frac.iter().collect();
    rates.sort_by_key(|&(qp, _)| *qp);
    for (qp, frac) in rates.iter().take(8) {
        println!(
            "  {qp}: {:5.1}%{}",
            **frac * 100.0,
            if **frac < 0.5 {
                "   <-- below 50% threshold"
            } else {
                ""
            }
        );
    }

    println!("\n--- (c/d) PFC pause counters (top links) ---");
    let mut pfc: Vec<_> = snap.link_pfc.iter().collect();
    pfc.sort_by_key(|&(_, ns)| std::cmp::Reverse(*ns));
    for (l, ns) in pfc.iter().take(4) {
        println!("  link {l}: {:.3} ms of pause", **ns as f64 / 1e6);
    }

    println!("\n=== hierarchical analyzer ===\n");
    let diagnosis = Analyzer::new().diagnose(snap, &outcome.prober);
    println!("manifestation : {}", diagnosis.manifestation);
    println!("cause         : {}", diagnosis.cause);
    println!("culprit       : {:?}", diagnosis.culprit);
    println!("queries issued: {}", diagnosis.queries);
    println!("\ndrill-down evidence:");
    for (i, e) in diagnosis.evidence.iter().enumerate() {
        println!("  {}. {e}", i + 1);
    }

    // Time-to-locate comparison (Figure 10's axis).
    let manual = astral::monitor::mttlf::manual_locate_time_s(
        &astral::monitor::mttlf::ManualCostModel::default(),
        diagnosis.manifestation,
        1024,
    );
    let auto = astral::monitor::mttlf::analyzer_locate_time_s(
        &astral::monitor::mttlf::AnalyzerCostModel::default(),
        &diagnosis,
    );
    println!(
        "\nMTTLF: manual bisection ≈ {:.1} h; analyzer ≈ {:.1} min ({}× faster)",
        manual / 3600.0,
        auto / 60.0,
        (manual / auto) as u64
    );

    // ------------------------------------------------------------------
    // Act two: a gray failure — the link flaps instead of dying.
    // ------------------------------------------------------------------
    println!("\n=== injecting: flapping link (3 down phases, period 3 iters) ===\n");
    let script = FaultScript {
        faults: vec![InjectedFault::FlappingLink {
            at_iter: 3,
            period: 3,
            duty_cycle: 0.34,
            flap_count: 3,
        }],
    };
    let spec = TrainingJobSpec {
        iters: 24,
        bytes: 256 << 20,
        comp_s: 0.01,
        ..TrainingJobSpec::default()
    };
    let report = run_training(&topo, &RecoveryPolicy::gray_aware(), &spec, &script);
    println!("--- incident log ---");
    for inc in &report.incidents {
        println!(
            "  iter {:>2}: {:?} -> {:?} (blamed {:?})",
            inc.iter, inc.class, inc.action, inc.blamed
        );
    }
    let probations = report
        .incidents
        .iter()
        .filter(|i| i.action == MitigationAction::LinkProbation)
        .count();
    let readmits = report
        .incidents
        .iter()
        .filter(|i| i.action == MitigationAction::ProbeReadmit)
        .count();
    println!(
        "\ncompleted: {} | goodput {:.3} | {} probation(s), {} probe-readmit(s), \
         {} rollback seconds",
        report.completed,
        report.goodput(),
        probations,
        readmits,
        report.lost_rollback_s,
    );
    println!(
        "the flapper drew one probation and one readmit — not {} separate alarms",
        script.faults.len() * 3
    );
}
