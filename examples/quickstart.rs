//! Quickstart: deploy an Astral fabric, check its Figure-3 arithmetic,
//! run a collective on the flow-level simulator, and forecast a training
//! iteration with Seer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use astral::collectives::{CollectiveRunner, RunnerConfig};
use astral::core::AstralInfrastructure;
use astral::model::{ModelConfig, ParallelismConfig};
use astral::topo::{AstralParams, GpuId};

fn main() {
    // 1. The paper-scale arithmetic (Figure 3) — checked without building
    //    half a million simulated NICs.
    let paper = AstralParams::paper_scale().scale();
    println!("Astral at paper scale:");
    println!("  GPUs per block : {:>8}", paper.gpus_per_block);
    println!("  GPUs per Pod   : {:>8}", paper.gpus_per_pod);
    println!("  GPUs total     : {:>8}", paper.gpus_total);
    println!(
        "  same-rail GPUs : {:>8} per Pod",
        paper.same_rail_gpus_per_pod
    );
    println!(
        "  ToR/Agg/Core capacity: {:.1}T each (identical tiers)\n",
        paper.tor_capacity_gbps / 1000.0
    );

    // 2. Deploy a simulation-scale instance.
    let infra = AstralInfrastructure::deploy(AstralParams::sim_medium());
    println!(
        "deployed {} GPUs across {} pods; facility PUE = {:.3}\n",
        infra.scale().gpus_total,
        infra.params().pods,
        infra.pue()
    );

    // 3. Run a 256 MiB AllReduce over 16 same-rail GPUs on the flow-level
    //    network simulator.
    let mut runner = CollectiveRunner::new(infra.topology(), RunnerConfig::default());
    let group: Vec<GpuId> = (0..16)
        .map(|h| GpuId(h * infra.topology().rails() as u32))
        .collect();
    let bytes = 256u64 << 20;
    let result = runner.all_reduce(&group, bytes);
    println!(
        "AllReduce 256 MiB over {} GPUs: {:.3} ms (algbw {:.1} Gbit/s, {} network bytes)",
        group.len(),
        result.duration.as_secs_f64() * 1e3,
        result.algbw_bps(bytes) / 1e9,
        result.network_bytes
    );

    // 4. Calibrate Seer against this fabric and forecast a training
    //    iteration.
    let mut model = ModelConfig::llama3_8b();
    model.layers = 16;
    let mut par = ParallelismConfig::new(8, 2, 8);
    par.microbatches = 4;
    let seer = infra.calibrated_seer(&par, 42);
    let f = seer.forecast_training(&model, &par);
    println!(
        "\nSeer forecast for {} on {} GPUs: iteration {:.3} s, {:.0} tokens/s, MFU {:.1}%",
        model.name,
        par.world(),
        f.iteration_s,
        f.tokens_per_s,
        f.mfu * 100.0
    );
    println!(
        "exposed communication: {:.1}% of the iteration",
        f.timeline.exposed_comm_fraction() * 100.0
    );
}
