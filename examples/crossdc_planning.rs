//! Cross-datacenter planning with Seer (paper §4.4 Case #1, Appendix B).
//!
//! Two questions an infrastructure provider must answer before wiring two
//! DCs together with expensive long-haul fiber:
//!
//! 1. *Which* parallelism traffic should cross datacenters? (Intuition says
//!    PP; the paper shows DP can be better because it overlaps.)
//! 2. *How much* bandwidth oversubscription is tolerable?
//!
//! ```sh
//! cargo run --release --example crossdc_planning
//! ```

use astral::model::{DpSync, GroupKind, ModelConfig, ParallelismConfig};
use astral::seer::{NetworkSpec, Seer, SeerConfig};

fn forecast(model: &ModelConfig, par: &ParallelismConfig, net: NetworkSpec) -> f64 {
    let mut cfg = SeerConfig::h100_astral_basic();
    cfg.net = net;
    Seer::new(cfg).forecast_training(model, par).iteration_s
}

fn main() {
    let mut model = ModelConfig::llama3_70b();
    model.layers = 32; // a scaled stage count that divides pp

    // 1K-GPU job: tp=8, pp=4, dp=32.
    let mut par = ParallelismConfig::new(8, 4, 32);
    par.microbatches = 8;
    println!(
        "planning a {}-GPU cross-DC deployment of {} (300 km apart)\n",
        par.world(),
        model.name
    );

    let base = forecast(&model, &par, NetworkSpec::astral());
    println!("single-DC baseline iteration: {base:.3} s\n");

    println!("--- which traffic should cross? (oversubscription 8:1) ---");
    for (label, group) in [
        ("TP", GroupKind::Tp),
        ("PP", GroupKind::Pp),
        ("DP", GroupKind::Dp),
    ] {
        let net = NetworkSpec::astral().with_crossdc(group, 8.0, 300.0);
        let t = forecast(&model, &par, net);
        println!(
            "  {label} across DCs: iteration {t:.3} s ({:+.1}% vs single-DC)",
            (t / base - 1.0) * 100.0
        );
    }
    // ZeRO-DP: same DP assignment but with ZeRO-3's parameter gathers.
    let mut zpar = par;
    zpar.zero = DpSync::Zero3;
    let t = forecast(
        &model,
        &zpar,
        NetworkSpec::astral().with_crossdc(GroupKind::Dp, 8.0, 300.0),
    );
    let zbase = forecast(&model, &zpar, NetworkSpec::astral());
    println!(
        "  ZeRO-DP across DCs: iteration {t:.3} s ({:+.1}% vs its own single-DC {zbase:.3} s)",
        (t / zbase - 1.0) * 100.0
    );

    println!("\n--- how much oversubscription can PP tolerate? ---");
    for ratio in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let net = NetworkSpec::astral().with_crossdc(GroupKind::Pp, ratio, 300.0);
        let t = forecast(&model, &par, net);
        println!(
            "  {ratio:>4.0}:1  iteration {t:.3} s ({:+.2}% vs single-DC)",
            (t / base - 1.0) * 100.0
        );
    }
    println!("\n(the paper: 8:1 is free, 32:1 costs ≈4.6% — Figure 18)");
}
