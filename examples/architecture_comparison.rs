//! Architecture bake-off: the Figure 2 mechanism as a runnable experiment.
//!
//! The same all-to-all workload (the MoE expert-parallel pattern) runs over
//! four fabrics built from identical hosts and link budgets:
//!
//! * **Astral** — same-rail tier-2 aggregation, identical tier bandwidth;
//! * **CLOS** — rail-agnostic ToRs, oversubscribed tier 3 (Meta/ByteDance);
//! * **rail-optimized** — rail ToRs, full tier-2 interconnect, oversub
//!   tier 3 (Alibaba HPN);
//! * **rail-only** — no Core tier: cross-rail traffic must relay over
//!   NVLink (Meta HOTI'24).
//!
//! ```sh
//! cargo run --release --example architecture_comparison
//! ```

use astral::collectives::{CollectiveRunner, RunnerConfig};
use astral::topo::{
    build_astral, build_clos, build_rail_only, build_rail_optimized, AstralParams, BaselineParams,
    GpuId, Topology,
};

/// All-to-all over a group spanning hosts *and* rails (EP-style traffic).
fn a2a_time(topo: &Topology, gpus: u32, bytes: u64) -> (f64, u64, u64) {
    let mut runner = CollectiveRunner::new(topo, RunnerConfig::default());
    let group: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let r = runner.all_to_all(&group, bytes);
    (r.duration.as_secs_f64(), r.network_bytes, r.nvlink_bytes)
}

fn main() {
    let mut params = AstralParams::sim_small();
    params.pods = 1;
    let gpus = 64u32;
    let bytes = 64u64 << 20;

    println!(
        "pairwise all-to-all, {gpus} GPUs spanning rails, {} MiB per rank\n",
        bytes >> 20
    );
    println!(
        "{:<16} {:>12} {:>14} {:>14}",
        "fabric", "time (ms)", "net bytes", "nvlink bytes"
    );

    let astral = build_astral(&params);
    let (t_astral, nb, vb) = a2a_time(&astral, gpus, bytes);
    println!(
        "{:<16} {:>12.3} {:>14} {:>14}",
        "astral",
        t_astral * 1e3,
        nb,
        vb
    );

    for oversub in [1.0, 4.0] {
        let bp = BaselineParams {
            base: params.clone(),
            tier3_oversub: oversub,
        };
        let clos = build_clos(&bp);
        let (t, nb, vb) = a2a_time(&clos, gpus, bytes);
        println!(
            "{:<16} {:>12.3} {:>14} {:>14}",
            format!("clos {oversub}:1"),
            t * 1e3,
            nb,
            vb
        );
        let ropt = build_rail_optimized(&bp);
        let (t, nb, vb) = a2a_time(&ropt, gpus, bytes);
        println!(
            "{:<16} {:>12.3} {:>14} {:>14}",
            format!("rail-opt {oversub}:1"),
            t * 1e3,
            nb,
            vb
        );
    }

    let rail_only = build_rail_only(&params);
    let (t, nb, vb) = a2a_time(&rail_only, gpus, bytes);
    println!(
        "{:<16} {:>12.3} {:>14} {:>14}",
        "rail-only",
        t * 1e3,
        nb,
        vb
    );
    println!(
        "\nrail-only pays for missing Core switches with NVLink relay bytes;\n\
         oversubscribed fabrics stretch the all-to-all — Astral's identical\n\
         tiers keep it flat (paper Figure 2: up to 52% loss from oversub)."
    );
}
